//! Steady-state trace replay over fixed path tables.
//!
//! Figures 4, 5 and 6 report, per traffic matrix, the power draw of the
//! configuration REsPoNseTE would settle into ("for each traffic demand,
//! we compute the topology, along with its power consumption, that will
//! be put into place by running REsPoNseTE", §5.2). This module computes
//! exactly that without running the event-driven simulator: demands are
//! water-filled into the installed paths in priority order under the
//! utilization threshold, and elements not carrying traffic sleep
//! (always-on elements stay powered, as their name demands).

use crate::tables::PathTables;
use crate::te::TeConfig;
use ecp_power::PowerModel;
use ecp_topo::{ActiveSet, Topology};
use ecp_traffic::{Trace, TrafficMatrix};
use serde::{Deserialize, Serialize};

/// One replay sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReplayPoint {
    /// Trace time (seconds from start).
    pub t: f64,
    /// Network power in Watts.
    pub power_w: f64,
    /// Power as a fraction of the fully-on network.
    pub power_frac: f64,
    /// Fraction of offered volume that could be placed within the
    /// threshold (1.0 = no congestion).
    pub placed_fraction: f64,
    /// Maximum link utilization after placement.
    pub max_util: f64,
    /// Number of demands that spilled beyond the always-on table.
    pub spilled_demands: usize,
}

/// A whole replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Interval of the driving trace, seconds.
    pub interval_s: f64,
    /// One point per trace interval.
    pub points: Vec<ReplayPoint>,
}

impl ReplayReport {
    /// Mean power fraction across the replay (the headline savings
    /// number: `1 − mean`).
    pub fn mean_power_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        self.points.iter().map(|p| p.power_frac).sum::<f64>() / self.points.len() as f64
    }

    /// Fraction of intervals with any unplaced traffic.
    pub fn congested_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .filter(|p| p.placed_fraction < 1.0 - 1e-9)
            .count() as f64
            / self.points.len() as f64
    }
}

/// Place one matrix onto the tables; returns (active set, placed
/// fraction, max utilization, spilled demand count).
pub fn place_matrix(
    topo: &Topology,
    tables: &PathTables,
    tm: &TrafficMatrix,
    te: &TeConfig,
) -> (ActiveSet, f64, f64, usize) {
    let cap: Vec<f64> = topo.arc_ids().map(|a| topo.arc(a).capacity).collect();
    let mut load = vec![0.0; topo.arc_count()];
    let mut placed = 0.0;
    let mut spilled = 0usize;
    // Elements in use: start from the always-on table (those stay
    // powered regardless of load).
    let mut active = tables.always_on_active(topo);

    let mut demands = tm.demands().to_vec();
    demands.sort_by(|a, b| b.rate.partial_cmp(&a.rate).unwrap());
    for d in &demands {
        let paths = match tables.get(d.origin, d.dst) {
            Some(p) => p,
            None => continue,
        };
        let mut remaining = d.rate;
        let mut used_beyond_always_on = false;
        for (pi, p) in paths.all().into_iter().enumerate() {
            if remaining <= 1e-9 {
                break;
            }
            let arcs = match p.arcs(topo) {
                Some(a) => a,
                None => continue,
            };
            // Headroom of this path under current loads.
            let head = arcs
                .iter()
                .map(|a| te.threshold * cap[a.idx()] - load[a.idx()])
                .fold(f64::INFINITY, f64::min)
                .max(0.0);
            let take = remaining.min(head);
            if take > 1e-9 {
                for a in &arcs {
                    load[a.idx()] += take;
                    active.set_link(topo, *a, true);
                    active.set_node(topo.arc(*a).src, true);
                    active.set_node(topo.arc(*a).dst, true);
                }
                remaining -= take;
                placed += take;
                if pi > 0 {
                    used_beyond_always_on = true;
                }
            }
        }
        if remaining > 1e-9 {
            // Overload: push the excess on the last path (congestion),
            // mirroring the TE spill rule.
            if let Some(p) = paths.all().last().copied() {
                if let Some(arcs) = p.arcs(topo) {
                    for a in &arcs {
                        load[a.idx()] += remaining;
                        active.set_link(topo, *a, true);
                        active.set_node(topo.arc(*a).src, true);
                        active.set_node(topo.arc(*a).dst, true);
                    }
                }
            }
            used_beyond_always_on = true;
        }
        if used_beyond_always_on {
            spilled += 1;
        }
    }
    let total = tm.total();
    let placed_fraction = if total > 0.0 { placed / total } else { 1.0 };
    let max_util = load
        .iter()
        .enumerate()
        .map(|(i, &l)| l / cap[i])
        .fold(0.0, f64::max);
    (active, placed_fraction, max_util, spilled)
}

/// Replay a whole trace over fixed tables.
pub fn steady_state_replay(
    topo: &Topology,
    power: &PowerModel,
    tables: &PathTables,
    trace: &Trace,
    te: &TeConfig,
) -> ReplayReport {
    let full = power.full_power(topo);
    let points = trace
        .matrices
        .iter()
        .enumerate()
        .map(|(i, tm)| {
            let (active, placed_fraction, max_util, spilled) = place_matrix(topo, tables, tm, te);
            let power_w = power.network_power(topo, &active);
            ReplayPoint {
                t: i as f64 * trace.interval_s,
                power_w,
                power_frac: power_w / full,
                placed_fraction,
                max_util,
                spilled_demands: spilled,
            }
        })
        .collect();
    ReplayReport {
        interval_s: trace.interval_s,
        points,
    }
}

/// Maximum total volume (at fixed matrix proportions) the tables can
/// carry within the threshold without spilling unplaced traffic — used
/// for the "always-on paths alone accommodate ~50% of the OSPF-carriable
/// volume" claim (§4.1). `use_tables_prefix` limits how many tables are
/// usable (1 = always-on only).
pub fn max_supported_scale(
    topo: &Topology,
    tables: &PathTables,
    base: &TrafficMatrix,
    te: &TeConfig,
    use_tables_prefix: usize,
) -> f64 {
    // Restrict tables to the prefix.
    let mut restricted = PathTables::new();
    for (&(o, d), p) in tables.iter() {
        let mut q = p.clone();
        let keep_od = use_tables_prefix.saturating_sub(1).min(q.on_demand.len());
        q.on_demand.truncate(keep_od);
        if use_tables_prefix <= 1 + q.on_demand.len() + 1 {
            // failover counts as the last table; drop it if outside the
            // prefix (always keep at least always-on).
            if use_tables_prefix < q.num_paths() {
                q.failover = q.always_on.clone();
            }
        }
        restricted.insert(o, d, q);
    }
    // Binary search on the scale factor.
    let fits = |scale: f64| -> bool {
        let tm = base.scaled(scale);
        let (_, placed, _, _) = place_matrix(topo, &restricted, &tm, te);
        placed >= 1.0 - 1e-6
    };
    if !fits(1e-6) {
        return 0.0;
    }
    let (mut lo, mut hi) = (1e-6, 1.0);
    while fits(hi) && hi < 1e6 {
        lo = hi;
        hi *= 2.0;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};
    use ecp_topo::gen::fig3;
    use ecp_topo::{MBPS, MS};
    use ecp_traffic::Demand;

    fn setup() -> (Topology, PathTables, ecp_topo::gen::Fig3Nodes, PowerModel) {
        let (t, n) = fig3(10.0 * MBPS, 16.67 * MS, false);
        let pm = PowerModel::cisco12000();
        let tables =
            Planner::new(&t, &pm).plan_pairs(&PlannerConfig::default(), &[(n.a, n.k), (n.c, n.k)]);
        (t, tables, n, pm)
    }

    fn tmix(n: &ecp_topo::gen::Fig3Nodes, ra: f64, rc: f64) -> TrafficMatrix {
        TrafficMatrix::new(vec![
            Demand {
                origin: n.a,
                dst: n.k,
                rate: ra,
            },
            Demand {
                origin: n.c,
                dst: n.k,
                rate: rc,
            },
        ])
    }

    #[test]
    fn light_load_sleeps_on_demand_paths() {
        let (t, tables, n, _) = setup();
        let te = TeConfig::default();
        let (active, placed, _, spilled) = place_matrix(&t, &tables, &tmix(&n, 1e6, 1e6), &te);
        assert!((placed - 1.0).abs() < 1e-9);
        assert_eq!(spilled, 0);
        // Only the always-on subset is powered.
        let aon = tables.always_on_active(&t);
        assert_eq!(active.nodes_on_count(), aon.nodes_on_count());
    }

    #[test]
    fn heavy_load_wakes_on_demand() {
        let (t, tables, n, _) = setup();
        let te = TeConfig::default();
        // 8 + 8 Mbps cannot share one 10 Mbps middle link at 90%.
        let (active, placed, _, spilled) = place_matrix(&t, &tables, &tmix(&n, 8e6, 8e6), &te);
        assert!(
            (placed - 1.0).abs() < 1e-9,
            "on-demand capacity absorbs the peak"
        );
        assert!(spilled >= 1);
        let aon = tables.always_on_active(&t);
        assert!(active.nodes_on_count() > aon.nodes_on_count());
    }

    #[test]
    fn overload_reports_unplaced() {
        let (t, tables, n, _) = setup();
        let te = TeConfig::default();
        // 2 x 20 Mbps >> total capacity toward K (3 x 10 Mbps links).
        let (_, placed, max_util, _) = place_matrix(&t, &tables, &tmix(&n, 20e6, 20e6), &te);
        assert!(placed < 1.0);
        assert!(
            max_util > 1.0,
            "spill rule pushes past capacity: {max_util}"
        );
    }

    #[test]
    fn replay_power_tracks_load() {
        let (t, tables, n, pm) = setup();
        let te = TeConfig::default();
        let trace = Trace {
            name: "updown".into(),
            interval_s: 60.0,
            matrices: vec![tmix(&n, 1e6, 1e6), tmix(&n, 8e6, 8e6), tmix(&n, 1e6, 1e6)],
        };
        let rep = steady_state_replay(&t, &pm, &tables, &trace, &te);
        assert_eq!(rep.points.len(), 3);
        assert!(
            rep.points[1].power_w > rep.points[0].power_w,
            "peak wakes elements"
        );
        assert!(
            (rep.points[2].power_w - rep.points[0].power_w).abs() < 1e-6,
            "returns to sleep"
        );
        assert_eq!(rep.congested_fraction(), 0.0);
        assert!(rep.mean_power_fraction() < 1.0);
    }

    #[test]
    fn always_on_supports_roughly_half_of_full_tables() {
        let (t, tables, n, _) = setup();
        let te = TeConfig {
            threshold: 1.0,
            ..Default::default()
        };
        let base = tmix(&n, 1e6, 1e6);
        let only_aon = max_supported_scale(&t, &tables, &base, &te, 1);
        let all = max_supported_scale(&t, &tables, &base, &te, 3);
        assert!(all > only_aon, "extra tables add capacity");
        // Fig-3 shape: always-on shares one middle link (10 M for 2 Mbps
        // base -> scale 5 if shared, capped by the shared E-H link);
        // full tables give each source its own branch (scale 10).
        let ratio = only_aon / all;
        assert!(
            (0.3..=0.7).contains(&ratio),
            "always-on carries ~half: {ratio}"
        );
    }

    #[test]
    fn empty_trace() {
        let (t, tables, _, pm) = setup();
        let rep = steady_state_replay(
            &t,
            &pm,
            &tables,
            &Trace {
                name: "e".into(),
                interval_s: 1.0,
                matrices: vec![],
            },
            &TeConfig::default(),
        );
        assert!(rep.points.is_empty());
        assert_eq!(rep.mean_power_fraction(), 1.0);
    }
}
