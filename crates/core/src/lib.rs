//! # respons-core — the REsPoNse framework
//!
//! The paper's primary contribution (§4): REsPoNse identifies a few
//! *energy-critical paths* off-line, installs them as three routing
//! tables, and uses a simple online traffic-engineering element to let
//! large parts of the network sleep:
//!
//! * [`PathTables`] — the installed state: per OD pair an **always-on**
//!   path, up to `N − 2` **on-demand** paths, and a **failover** path.
//! * [`Planner`] / [`PlannerConfig`] — the off-line computation (§4.1–
//!   4.3): a minimal-power-tree always-on table (optionally delay-bounded
//!   — *REsPoNse-lat*), on-demand tables via the stress-factor
//!   construction (or peak-matrix / OSPF / GreenTE-like variants), and
//!   link-disjoint failover paths.
//! * [`critical`] — the traffic-matrix analytics of §3: ranking the
//!   paths each OD pair actually uses across a trace (Fig. 2b) and
//!   counting routing-configuration dominance (Fig. 2a).
//! * [`te`] — REsPoNseTE's decision logic (§4.4): edge agents
//!   aggregate traffic onto always-on paths while the SLO holds and
//!   spill to on-demand paths (waking them) when it does not; pure
//!   functions here, actuated by `ecp-simnet`.
//! * [`replay`] — steady-state trace replay over fixed tables: the
//!   power-vs-time series of Figs. 4, 5, 6 without rerunning the full
//!   simulator.

pub mod critical;
pub mod deploy;
pub mod drift;
pub mod planner;
pub mod replay;
pub mod resilience;
pub mod tables;
pub mod te;

pub use critical::{coverage_by_top_paths, PathUsage};
pub use deploy::{deploy_most_important, tunnel_usage, DeploymentReport, DeviceLimits};
pub use drift::{DriftConfig, DriftDetector, ReplanAdvice, ReplanReason};
pub use planner::{OnDemandStrategy, Planner, PlannerConfig};
pub use replay::{steady_state_replay, ReplayPoint, ReplayReport};
pub use resilience::{single_link_failure_coverage, ResilienceReport};
pub use tables::{OdPaths, PathTables};
pub use te::{
    apply_step, apply_step_into, decide_shares, decide_shares_into, waterfill_iterations,
    waterfill_target, waterfill_target_into, PathView, TeConfig,
};
