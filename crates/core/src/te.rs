//! REsPoNseTE decision logic (§4.4) — pure functions, actuated by
//! `ecp-simnet`.
//!
//! "Agents aggregate the traffic on the always-on paths as long as the
//! target SLO is achieved, and start activating the on-demand paths when
//! that is no longer the case. [...] Just as in TeXCP, we implement a
//! stable controller to prevent oscillations."
//!
//! The agent of an OD pair holds a share vector over its installed paths
//! (priority order: always-on, on-demand…, failover). Each control round
//! it computes a *target* allocation by water-filling its offered rate
//! into the paths' headroom in priority order, then moves the live
//! shares a bounded step toward the target (the stability mechanism:
//! bounded-gain first-order tracking, which cannot oscillate for step
//! ≤ 1 against a fixed target).

use serde::{Deserialize, Serialize};
use std::cell::Cell;

thread_local! {
    static WATERFILL_ITERS: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic count of waterfill inner-loop iterations executed on the
/// calling thread. Telemetry sinks read the delta around a control
/// round; sound under rayon because one simulation runs wholly on one
/// worker thread. Always on — a thread-local increment per path is
/// noise next to the arithmetic it counts.
pub fn waterfill_iterations() -> u64 {
    WATERFILL_ITERS.with(|c| c.get())
}

/// What an agent knows about one of its paths at decision time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathView {
    /// Headroom in bits/s: `min over arcs (threshold·C − load_others)`,
    /// i.e. how much of *this agent's* traffic the path can absorb
    /// without violating the utilization SLO. May be negative.
    pub headroom: f64,
    /// Whether the path is usable (no failed element). Sleeping elements
    /// count as available — sending share to them is what triggers
    /// wake-up.
    pub available: bool,
}

/// REsPoNseTE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TeConfig {
    /// Target maximum link utilization (the ISP's SLO knob; activating
    /// on-demand paths *sooner* than saturation, §4.4).
    pub threshold: f64,
    /// Gain toward the target per control round, in `(0, 1]`. 1.0 jumps
    /// immediately; smaller values converge geometrically (stable).
    pub step: f64,
    /// Shares below this fraction are zeroed (lets idle paths drain and
    /// sleep instead of carrying dribbles).
    pub min_share: f64,
}

impl Default for TeConfig {
    fn default() -> Self {
        TeConfig {
            threshold: 0.9,
            step: 0.7,
            min_share: 1e-3,
        }
    }
}

/// Compute the new share vector for one OD agent.
///
/// * `offered_rate` — the agent's current demand (bits/s).
/// * `paths` — per-installed-path view, in priority order (always-on
///   first, failover last).
/// * `current` — current shares (fractions of `offered_rate`, summing to
///   ≈ 1 when the agent is sending).
///
/// Returns the updated shares (same length, non-negative, summing to 1
/// when any path is available).
pub fn decide_shares(
    offered_rate: f64,
    paths: &[PathView],
    current: &[f64],
    cfg: &TeConfig,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(paths.len());
    decide_shares_into(offered_rate, paths, current, cfg, &mut out);
    out
}

/// In-place form of [`decide_shares`]: writes the new share vector into
/// `out` (cleared first; any previous contents are irrelevant) without
/// allocating — the single buffer holds the water-filled target and is
/// then stepped/hygiened in place. `out` only ever grows to
/// `paths.len()`, so a reused buffer reaches a fixed capacity and the
/// decision path becomes allocation-free. Bit-identical to
/// [`decide_shares`] by construction (the allocating form is a thin
/// wrapper over this one).
pub fn decide_shares_into(
    offered_rate: f64,
    paths: &[PathView],
    current: &[f64],
    cfg: &TeConfig,
    out: &mut Vec<f64>,
) {
    assert_eq!(paths.len(), current.len());
    assert!(!paths.is_empty());
    waterfill_target_into(offered_rate, paths, out);
    step_hygiene_in_place(paths, current, cfg.step, cfg.min_share, out);
}

/// The target allocation of one control round: the offered rate
/// water-filled into the paths' headroom in priority order (the first
/// half of [`decide_shares`], exposed so alternative control policies —
/// `ecp-control` — can reuse it against modified path views).
pub fn waterfill_target(offered_rate: f64, paths: &[PathView]) -> Vec<f64> {
    let mut out = Vec::with_capacity(paths.len());
    waterfill_target_into(offered_rate, paths, &mut out);
    out
}

/// In-place form of [`waterfill_target`]: clears `out` and fills it
/// with the target allocation, allocating nothing once the buffer's
/// capacity has reached `paths.len()`.
pub fn waterfill_target_into(offered_rate: f64, paths: &[PathView], out: &mut Vec<f64>) {
    let n = paths.len();
    out.clear();
    out.resize(n, 0.0);
    let target = &mut out[..];
    let mut iters = 0u64;
    if offered_rate <= 0.0 {
        // Nothing to send: target everything to the always-on path so the
        // rest can sleep.
        if let Some(first_up) = paths.iter().position(|p| p.available) {
            target[first_up] = 1.0;
        }
    } else {
        let mut remaining = offered_rate;
        for (i, p) in paths.iter().enumerate() {
            iters += 1;
            if !p.available {
                continue;
            }
            let take = remaining.min(p.headroom.max(0.0));
            if take > 0.0 {
                target[i] = take / offered_rate;
                remaining -= take;
            }
            if remaining <= 1e-9 {
                break;
            }
        }
        if remaining > 1e-9 {
            // Overload: no headroom anywhere for the excess. Spill it on
            // the last available path (congestion is reported by the
            // simulator; the paper's REsPoNse is "no worse than existing
            // approaches under unexpected peaks").
            if let Some(last_up) = paths.iter().rposition(|p| p.available) {
                target[last_up] += remaining / offered_rate;
            }
        }
    }
    WATERFILL_ITERS.with(|c| c.set(c.get() + iters));
}

/// Bounded-step tracking toward a target plus share hygiene (the second
/// half of [`decide_shares`]): move `step` of the gap, vacate
/// unavailable paths immediately, drop dust below `min_share`, clamp,
/// and renormalize. Exposed for `ecp-control` policies that modulate
/// the target or the gain but keep the stability mechanism.
pub fn apply_step(
    paths: &[PathView],
    current: &[f64],
    target: &[f64],
    step: f64,
    min_share: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(target.len());
    apply_step_into(paths, current, target, step, min_share, &mut out);
    out
}

/// In-place form of [`apply_step`]: clears `out`, copies `target` in,
/// and steps/hygienes it in place — no allocation once the buffer's
/// capacity has reached `target.len()`. Bit-identical to [`apply_step`]
/// by construction.
pub fn apply_step_into(
    paths: &[PathView],
    current: &[f64],
    target: &[f64],
    step: f64,
    min_share: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend_from_slice(target);
    step_hygiene_in_place(paths, current, step, min_share, out);
}

/// The shared tail of [`apply_step_into`] / [`decide_shares_into`]:
/// `new` holds the target on entry and the stepped, hygiened share
/// vector on exit. The arithmetic (`c + step * (t - c)`, vacate, dust,
/// clamp, renormalize) is exactly the original allocating sequence, so
/// results are bit-identical.
fn step_hygiene_in_place(
    paths: &[PathView],
    current: &[f64],
    step: f64,
    min_share: f64,
    new: &mut [f64],
) {
    for (v, &c) in new.iter_mut().zip(current) {
        *v = c + step * (*v - c);
    }
    // Unavailable paths are vacated immediately (failure reaction is not
    // rate-limited; the paper shifts traffic off failed paths promptly).
    for (i, p) in paths.iter().enumerate() {
        if !p.available {
            new[i] = 0.0;
        }
    }
    // Hygiene: clamp, drop dust, renormalize.
    for v in new.iter_mut() {
        if *v < min_share {
            *v = 0.0;
        }
        *v = v.clamp(0.0, 1.0);
    }
    let sum: f64 = new.iter().sum();
    if sum > 0.0 {
        for v in new.iter_mut() {
            *v /= sum;
        }
    } else if let Some(first_up) = paths.iter().position(|p| p.available) {
        new[first_up] = 1.0;
    }
}

/// Convergence helper: apply [`decide_shares`] against a *fixed*
/// environment until shares stop moving (used in tests and by the
/// steady-state replay).
pub fn converge_shares(
    offered_rate: f64,
    paths: &[PathView],
    start: &[f64],
    cfg: &TeConfig,
    max_rounds: usize,
) -> (Vec<f64>, usize) {
    let mut cur = start.to_vec();
    for round in 0..max_rounds {
        let next = decide_shares(offered_rate, paths, &cur, cfg);
        let delta: f64 = next.iter().zip(&cur).map(|(a, b)| (a - b).abs()).sum();
        cur = next;
        if delta < 1e-6 {
            return (cur, round + 1);
        }
    }
    (cur, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up(headroom: f64) -> PathView {
        PathView {
            headroom,
            available: true,
        }
    }

    fn down() -> PathView {
        PathView {
            headroom: 0.0,
            available: false,
        }
    }

    #[test]
    fn aggregates_on_always_on_when_it_fits() {
        let cfg = TeConfig::default();
        let paths = [up(10e6), up(10e6)];
        // Start spread 50/50; demand 5 Mbps fits entirely on always-on.
        let (shares, rounds) = converge_shares(5e6, &paths, &[0.5, 0.5], &cfg, 50);
        assert!(
            (shares[0] - 1.0).abs() < 1e-3,
            "all traffic on always-on: {shares:?}"
        );
        assert!(shares[1] < 1e-3);
        assert!(rounds < 30, "geometric convergence");
    }

    #[test]
    fn spills_to_on_demand_when_overloaded() {
        let cfg = TeConfig::default();
        // Always-on can absorb 4 Mbps, demand is 10 Mbps.
        let paths = [up(4e6), up(20e6)];
        let (shares, _) = converge_shares(10e6, &paths, &[1.0, 0.0], &cfg, 50);
        assert!(
            (shares[0] - 0.4).abs() < 0.02,
            "always-on filled to headroom: {shares:?}"
        );
        assert!((shares[1] - 0.6).abs() < 0.02, "excess on on-demand");
    }

    #[test]
    fn failure_vacates_immediately() {
        let cfg = TeConfig::default();
        let paths = [down(), up(20e6)];
        let shares = decide_shares(5e6, &paths, &[1.0, 0.0], &cfg);
        assert_eq!(shares[0], 0.0, "failed path vacated in one round");
        assert!((shares[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_overload_still_sends() {
        let cfg = TeConfig::default();
        let paths = [up(1e6), up(1e6)];
        let (shares, _) = converge_shares(10e6, &paths, &[1.0, 0.0], &cfg, 50);
        let sum: f64 = shares.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "shares always sum to 1: {shares:?}"
        );
        // Both paths filled; excess lands on the last one.
        assert!(shares[1] > shares[0]);
    }

    #[test]
    fn zero_demand_parks_on_always_on() {
        let cfg = TeConfig::default();
        let shares = decide_shares(0.0, &[up(1e6), up(1e6)], &[0.3, 0.7], &cfg);
        let (conv, _) = converge_shares(0.0, &[up(1e6), up(1e6)], &shares, &cfg, 50);
        assert!((conv[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn no_path_available_keeps_sane_output() {
        let cfg = TeConfig::default();
        let shares = decide_shares(5e6, &[down(), down()], &[0.5, 0.5], &cfg);
        assert_eq!(shares, vec![0.0, 0.0]);
    }

    #[test]
    fn negative_headroom_treated_as_zero() {
        let cfg = TeConfig::default();
        let paths = [up(-5e6), up(20e6)];
        let (shares, _) = converge_shares(5e6, &paths, &[1.0, 0.0], &cfg, 50);
        assert!(
            shares[0] < 1e-3,
            "overloaded always-on evacuated: {shares:?}"
        );
    }

    #[test]
    fn step_bounds_movement() {
        let cfg = TeConfig {
            step: 0.5,
            ..Default::default()
        };
        let paths = [up(10e6), up(10e6)];
        let s1 = decide_shares(5e6, &paths, &[0.0, 1.0], &cfg);
        // Target is [1, 0]; one round with step .5 moves halfway.
        assert!((s1[0] - 0.5).abs() < 1e-9, "{s1:?}");
    }

    #[test]
    fn convergence_within_two_rounds_at_high_gain() {
        // The paper reports ~2 RTTs to shift traffic; with step 0.7 two
        // rounds cover 91% of the gap.
        let cfg = TeConfig::default();
        let paths = [up(10e6), up(10e6)];
        let s1 = decide_shares(5e6, &paths, &[0.0, 1.0], &cfg);
        let s2 = decide_shares(5e6, &paths, &s1, &cfg);
        assert!(s2[0] > 0.9, "two rounds shift >90% of traffic: {s2:?}");
    }

    #[test]
    fn shares_stay_normalized_under_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = TeConfig::default();
        for _ in 0..200 {
            let n = rng.gen_range(1..5);
            let paths: Vec<PathView> = (0..n)
                .map(|_| PathView {
                    headroom: rng.gen_range(-5e6..20e6),
                    available: rng.gen_bool(0.8),
                })
                .collect();
            let mut cur: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let s: f64 = cur.iter().sum();
            if s > 0.0 {
                cur.iter_mut().for_each(|v| *v /= s);
            }
            let rate = rng.gen_range(0.0..20e6);
            let new = decide_shares(rate, &paths, &cur, &cfg);
            let sum: f64 = new.iter().sum();
            assert!(new.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
            assert!(
                (sum - 1.0).abs() < 1e-6 || sum == 0.0,
                "sum must be 1 (or 0 if nothing available): {new:?}"
            );
        }
    }
}
