//! Deployment feasibility (§4.5): do the tables fit real routers?
//!
//! "MPLS allows flows to be placed over precomputed paths. REsPoNse
//! places modest requirements on the number of paths (three) between any
//! given origin and destination. If we assume that the number of egress
//! points in large ISP backbones is about 200-300 and the number of
//! supported tunnels in modern routers is about 600 [...], we conclude
//! that REsPoNse can be deployed even in large ISP networks. If the
//! routing memory is limited (e.g. Dual Topology Routing allows only two
//! routing tables), we can deploy only the most important routing
//! tables, while keeping the remaining ones ready for later use."

use crate::tables::{OdPaths, PathTables};
use ecp_topo::NodeId;
use ecp_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hardware limits of the deployment target.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeviceLimits {
    /// Head-end MPLS tunnels a router can originate (paper: ~600 for
    /// 2005-era hardware).
    pub tunnels_per_router: usize,
    /// Distinct routing tables the platform supports per OD pair (Dual
    /// Topology Routing: 2; unconstrained MPLS: usize::MAX).
    pub tables_per_pair: usize,
}

impl Default for DeviceLimits {
    fn default() -> Self {
        DeviceLimits {
            tunnels_per_router: 600,
            tables_per_pair: usize::MAX,
        }
    }
}

/// Per-router tunnel accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// `(origin router, head-end tunnels required)`, descending.
    pub per_router: Vec<(NodeId, usize)>,
    /// Highest per-router tunnel count.
    pub max_tunnels: usize,
    /// Whether every router fits within the limits.
    pub fits: bool,
}

/// Count head-end tunnels per origin router (one tunnel per *distinct*
/// installed path — duplicate paths, e.g. a failover coinciding with an
/// on-demand path, share a tunnel in an MPLS deployment).
pub fn tunnel_usage(tables: &PathTables, limits: &DeviceLimits) -> DeploymentReport {
    let mut per: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (&(o, _), od) in tables.iter() {
        *per.entry(o).or_insert(0) += distinct_tunnels(od).min(limits.tables_per_pair);
    }
    let mut per_router: Vec<(NodeId, usize)> = per.into_iter().collect();
    per_router.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let max_tunnels = per_router.first().map(|&(_, c)| c).unwrap_or(0);
    DeploymentReport {
        per_router,
        max_tunnels,
        fits: max_tunnels <= limits.tunnels_per_router,
    }
}

/// Trim the tables to fit the device limits, keeping "the most important
/// routing tables" — importance is the expected traffic of the OD pair
/// under `typical` (pairs absent from the matrix rank last).
///
/// Trimming order, per origin router exceeding its budget:
/// 1. drop extra on-demand tables of the lowest-traffic pairs first
///    (always-on and failover are never dropped — connectivity and
///    protection survive);
/// 2. if still over budget, merge failover into on-demand for the
///    lowest-traffic pairs (failover = first on-demand path), freeing
///    one tunnel per pair.
pub fn deploy_most_important(
    tables: &PathTables,
    limits: &DeviceLimits,
    typical: &TrafficMatrix,
) -> PathTables {
    // Start from a per-pair copy with the tables_per_pair cap applied.
    let mut working: Vec<((NodeId, NodeId), OdPaths)> = tables
        .iter()
        .map(|(&k, od)| {
            let mut od = od.clone();
            if od.num_paths() > limits.tables_per_pair {
                let keep_od = limits.tables_per_pair.saturating_sub(2);
                od.on_demand.truncate(keep_od);
                if limits.tables_per_pair < 2 {
                    // Single-table platform: failover collapses onto the
                    // always-on path.
                    od.failover = od.always_on.clone();
                }
            }
            (k, od)
        })
        .collect();

    // Group indices by origin.
    let mut by_origin: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, ((o, _), _)) in working.iter().enumerate() {
        by_origin.entry(*o).or_default().push(i);
    }

    for (_, idxs) in by_origin {
        let budget = limits.tunnels_per_router;
        let mut count: usize = idxs.iter().map(|&i| distinct_tunnels(&working[i].1)).sum();
        if count <= budget {
            continue;
        }
        // Ascending importance.
        let mut order: Vec<usize> = idxs.clone();
        order.sort_by(|&a, &b| {
            let ta = typical.get(working[a].0 .0, working[a].0 .1);
            let tb = typical.get(working[b].0 .0, working[b].0 .1);
            ta.partial_cmp(&tb).unwrap()
        });
        // Pass 1: drop on-demand tables of unimportant pairs.
        for &i in &order {
            if count <= budget {
                break;
            }
            while !working[i].1.on_demand.is_empty() && count > budget {
                working[i].1.on_demand.pop();
                count = idxs.iter().map(|&j| distinct_tunnels(&working[j].1)).sum();
            }
        }
        // Pass 2: collapse failover onto always-on for unimportant pairs.
        for &i in &order {
            if count <= budget {
                break;
            }
            if working[i].1.failover != working[i].1.always_on {
                working[i].1.failover = working[i].1.always_on.clone();
                count = idxs.iter().map(|&j| distinct_tunnels(&working[j].1)).sum();
            }
        }
    }

    let mut out = PathTables::new();
    for ((o, d), od) in working {
        out.insert(o, d, od);
    }
    out
}

/// Tunnels a pair actually consumes: duplicate paths (failover ==
/// on-demand, etc.) share one tunnel.
fn distinct_tunnels(od: &OdPaths) -> usize {
    let mut seen: Vec<&ecp_topo::Path> = Vec::new();
    for p in od.all() {
        if !seen.contains(&p) {
            seen.push(p);
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};
    use ecp_power::PowerModel;
    use ecp_topo::gen::geant;
    use ecp_traffic::{gravity_matrix, random_od_pairs};

    fn planned() -> (ecp_topo::Topology, PathTables, Vec<(NodeId, NodeId)>) {
        let t = geant();
        let pm = PowerModel::cisco12000();
        let pairs = random_od_pairs(&t, 120, 3);
        let tables = Planner::new(&t, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
        (t, tables, pairs)
    }

    #[test]
    fn paper_scale_deployment_fits() {
        // Paper arithmetic: ~300 egress points x 3 paths <= 600 tunnels
        // holds when at most ~200 pairs originate per router. On GEANT
        // with 120 pairs over 23 routers, usage is far below the limit.
        let (_, tables, _) = planned();
        let rep = tunnel_usage(&tables, &DeviceLimits::default());
        assert!(rep.fits);
        assert!(rep.max_tunnels <= 600);
        assert!(!rep.per_router.is_empty());
        // Descending order.
        for w in rep.per_router.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn tight_budget_forces_trimming_low_traffic_pairs_first() {
        let (t, tables, pairs) = planned();
        let typical = gravity_matrix(&t, &pairs, 1e9);
        // The floor is one tunnel per pair (always-on survives trimming);
        // pick a budget above that floor but below the untrimmed usage.
        let untrimmed = tunnel_usage(&tables, &DeviceLimits::default());
        let max_pairs_per_origin = tables
            .iter()
            .fold(
                std::collections::BTreeMap::<NodeId, usize>::new(),
                |mut m, (&(o, _), _)| {
                    *m.entry(o).or_insert(0) += 1;
                    m
                },
            )
            .values()
            .copied()
            .max()
            .unwrap();
        let budget = max_pairs_per_origin + 3;
        assert!(
            budget < untrimmed.max_tunnels,
            "test premise: trimming needed"
        );
        let limits = DeviceLimits {
            tunnels_per_router: budget,
            tables_per_pair: usize::MAX,
        };
        let trimmed = deploy_most_important(&tables, &limits, &typical);
        let rep = tunnel_usage(&trimmed, &limits);
        assert!(
            rep.fits,
            "trimming must reach the budget: {}",
            rep.max_tunnels
        );
        // Connectivity survives: every pair still has its always-on path.
        assert_eq!(trimmed.len(), tables.len());
        for (&(o, d), od) in trimmed.iter() {
            assert_eq!(od.always_on.origin(), o);
            assert_eq!(od.always_on.destination(), d);
        }
        // The highest-traffic pair of some busy router keeps more tables
        // than the lowest-traffic one.
        let busy = rep.per_router[0].0;
        let mut pairs_of: Vec<(&(NodeId, NodeId), &OdPaths)> =
            trimmed.iter().filter(|(&(o, _), _)| o == busy).collect();
        pairs_of.sort_by(|a, b| {
            typical
                .get(a.0 .0, a.0 .1)
                .partial_cmp(&typical.get(b.0 .0, b.0 .1))
                .unwrap()
        });
        if pairs_of.len() >= 2 {
            let least = distinct_tunnels(pairs_of.first().unwrap().1);
            let most = distinct_tunnels(pairs_of.last().unwrap().1);
            assert!(
                most >= least,
                "important pairs keep at least as many tables"
            );
        }
    }

    #[test]
    fn dual_topology_routing_cap() {
        // DTR supports two tables: always-on + one more.
        let (t, tables, pairs) = planned();
        let typical = gravity_matrix(&t, &pairs, 1e9);
        let limits = DeviceLimits {
            tunnels_per_router: usize::MAX,
            tables_per_pair: 2,
        };
        let trimmed = deploy_most_important(&tables, &limits, &typical);
        for (_, od) in trimmed.iter() {
            assert!(distinct_tunnels(od) <= 2, "DTR allows only two tables");
        }
        assert_eq!(trimmed.validate(&t), Ok(()));
    }

    #[test]
    fn generous_limits_change_nothing() {
        let (t, tables, pairs) = planned();
        let typical = gravity_matrix(&t, &pairs, 1e9);
        let trimmed = deploy_most_important(&tables, &DeviceLimits::default(), &typical);
        assert_eq!(trimmed, tables);
        let _ = t;
    }

    #[test]
    fn empty_tables_report() {
        let rep = tunnel_usage(&PathTables::new(), &DeviceLimits::default());
        assert!(rep.fits);
        assert_eq!(rep.max_tunnels, 0);
    }
}
