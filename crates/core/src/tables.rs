//! The installed routing state: always-on / on-demand / failover tables.

use ecp_topo::{ActiveSet, NodeId, Path, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The precomputed paths of one OD pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OdPaths {
    /// The path expected to be active most of the time (§4.1).
    pub always_on: Path,
    /// Extra-capacity paths activated under load, in activation order
    /// (§4.2). `N − 2` of them for `N` energy-critical paths.
    pub on_demand: Vec<Path>,
    /// Protection path, link-disjoint from the others where possible
    /// (§4.3).
    pub failover: Path,
}

impl OdPaths {
    /// All paths in priority order: always-on, on-demand…, failover.
    pub fn all(&self) -> Vec<&Path> {
        let mut v = Vec::with_capacity(2 + self.on_demand.len());
        v.push(&self.always_on);
        v.extend(self.on_demand.iter());
        v.push(&self.failover);
        v
    }

    /// Total number of installed paths (`N` in the paper).
    pub fn num_paths(&self) -> usize {
        2 + self.on_demand.len()
    }
}

/// The full installed state: one [`OdPaths`] per OD pair.
///
/// "REsPoNse places modest requirements on the number of paths (three)
/// between any given origin and destination" (§4.5).
///
/// Serialized as a flat entry list (JSON map keys must be strings).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathTables {
    tables: BTreeMap<(NodeId, NodeId), OdPaths>,
}

impl Serialize for PathTables {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v: Vec<(&NodeId, &NodeId, &OdPaths)> =
            self.tables.iter().map(|((o, d), p)| (o, d, p)).collect();
        v.serialize(s)
    }
}

impl<'de> Deserialize<'de> for PathTables {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v: Vec<(NodeId, NodeId, OdPaths)> = Vec::deserialize(d)?;
        let mut t = PathTables::new();
        for (o, dd, p) in v {
            t.tables.insert((o, dd), p);
        }
        Ok(t)
    }
}

impl PathTables {
    /// Empty tables.
    pub fn new() -> Self {
        PathTables {
            tables: BTreeMap::new(),
        }
    }

    /// Install the paths of one OD pair.
    pub fn insert(&mut self, origin: NodeId, dst: NodeId, paths: OdPaths) {
        debug_assert_eq!(paths.always_on.origin(), origin);
        debug_assert_eq!(paths.always_on.destination(), dst);
        self.tables.insert((origin, dst), paths);
    }

    /// Paths of one OD pair.
    pub fn get(&self, origin: NodeId, dst: NodeId) -> Option<&OdPaths> {
        self.tables.get(&(origin, dst))
    }

    /// Number of OD pairs with installed paths.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no pair is installed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &OdPaths)> {
        self.tables.iter()
    }

    /// The active set powering exactly the always-on paths — the
    /// network's low-power resting state.
    pub fn always_on_active(&self, topo: &Topology) -> ActiveSet {
        let mut used = Vec::new();
        for p in self.tables.values() {
            if let Some(arcs) = p.always_on.arcs(topo) {
                used.extend(arcs);
            }
        }
        let mut s = ActiveSet::from_used_arcs(topo, used);
        for &(o, d) in self.tables.keys() {
            s.set_node(o, true);
            s.set_node(d, true);
        }
        s
    }

    /// The active set with always-on plus the first `k` on-demand tables
    /// of every pair.
    pub fn active_with_on_demand(&self, topo: &Topology, k: usize) -> ActiveSet {
        let mut used = Vec::new();
        for p in self.tables.values() {
            if let Some(arcs) = p.always_on.arcs(topo) {
                used.extend(arcs);
            }
            for od in p.on_demand.iter().take(k) {
                if let Some(arcs) = od.arcs(topo) {
                    used.extend(arcs);
                }
            }
        }
        let mut s = ActiveSet::from_used_arcs(topo, used);
        for &(o, d) in self.tables.keys() {
            s.set_node(o, true);
            s.set_node(d, true);
        }
        s
    }

    /// Check structural sanity against a topology: every installed path
    /// must be resolvable and connect its OD pair.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        for (&(o, d), paths) in &self.tables {
            for p in paths.all() {
                if p.origin() != o || p.destination() != d {
                    return Err(format!("path {p} does not connect {o}->{d}"));
                }
                if !p.is_valid_in(topo) {
                    return Err(format!("path {p} not resolvable in topology"));
                }
            }
        }
        Ok(())
    }

    /// Fraction of OD pairs whose failover path is fully link-disjoint
    /// from their always-on path (reporting aid for §4.3).
    pub fn failover_disjoint_fraction(&self, topo: &Topology) -> f64 {
        if self.tables.is_empty() {
            return 1.0;
        }
        let disjoint = self
            .tables
            .values()
            .filter(|p| !p.failover.shares_link_with(&p.always_on, topo))
            .count();
        disjoint as f64 / self.tables.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_topo::gen::fig3;
    use ecp_topo::{MBPS, MS};

    fn sample_tables() -> (Topology, PathTables, ecp_topo::gen::Fig3Nodes) {
        let (t, n) = fig3(10.0 * MBPS, 16.67 * MS, false);
        let mut pt = PathTables::new();
        pt.insert(
            n.a,
            n.k,
            OdPaths {
                always_on: Path::new(vec![n.a, n.e, n.h, n.k]),
                on_demand: vec![Path::new(vec![n.a, n.d, n.g, n.k])],
                failover: Path::new(vec![n.a, n.d, n.g, n.k]),
            },
        );
        pt.insert(
            n.c,
            n.k,
            OdPaths {
                always_on: Path::new(vec![n.c, n.e, n.h, n.k]),
                on_demand: vec![Path::new(vec![n.c, n.f, n.j, n.k])],
                failover: Path::new(vec![n.c, n.f, n.j, n.k]),
            },
        );
        (t, pt, n)
    }

    #[test]
    fn insert_get_len() {
        let (t, pt, n) = sample_tables();
        assert_eq!(pt.len(), 2);
        let p = pt.get(n.a, n.k).unwrap();
        assert_eq!(p.num_paths(), 3);
        assert_eq!(p.all().len(), 3);
        assert_eq!(pt.validate(&t), Ok(()));
    }

    #[test]
    fn always_on_active_is_the_middle_path() {
        let (t, pt, n) = sample_tables();
        let s = pt.always_on_active(&t);
        assert!(s.node_on(n.e));
        assert!(s.node_on(n.h));
        assert!(!s.node_on(n.d), "upper path asleep");
        assert!(!s.node_on(n.j), "lower path asleep");
        // A, C, E, H, K = 5 nodes; links A-E, C-E, E-H, H-K = 4.
        assert_eq!(s.nodes_on_count(), 5);
        assert_eq!(s.links_on_count(&t), 4);
    }

    #[test]
    fn on_demand_activation_grows_active_set() {
        let (t, pt, _) = sample_tables();
        let s0 = pt.always_on_active(&t);
        let s1 = pt.active_with_on_demand(&t, 1);
        assert!(s1.nodes_on_count() > s0.nodes_on_count());
        assert_eq!(s1.nodes_on_count(), 9, "all but B");
        // k beyond available tables is harmless.
        let s9 = pt.active_with_on_demand(&t, 9);
        assert_eq!(s9.nodes_on_count(), 9);
    }

    #[test]
    fn failover_disjointness_reported() {
        let (t, pt, _) = sample_tables();
        assert_eq!(pt.failover_disjoint_fraction(&t), 1.0);
    }

    #[test]
    fn validate_catches_bad_paths() {
        let (t, n) = fig3(10.0 * MBPS, 16.67 * MS, false);
        let mut pt = PathTables::new();
        pt.insert(
            n.a,
            n.k,
            OdPaths {
                // A-G is not a link.
                always_on: Path::new(vec![n.a, n.g, n.k]),
                on_demand: vec![],
                failover: Path::new(vec![n.a, n.e, n.h, n.k]),
            },
        );
        assert!(pt.validate(&t).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (_, pt, _) = sample_tables();
        let js = serde_json::to_string(&pt).unwrap();
        let back: PathTables = serde_json::from_str(&js).unwrap();
        assert_eq!(back, pt);
    }
}
