//! Failure-coverage analysis of installed path tables (§4.3).
//!
//! "We have opted for a single failover path per (O,D) pair because our
//! analysis revealed that even a single path can deal with vast majority
//! of failures, without causing any disconnectivity in the network."
//!
//! This module *is* that analysis: enumerate every single physical-link
//! failure and check, per OD pair, whether at least one installed path
//! survives.

use crate::tables::PathTables;
use ecp_topo::{ArcId, Topology};
use serde::{Deserialize, Serialize};

/// Outcome of [`single_link_failure_coverage`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Number of (OD pair, failed link) combinations examined. Only
    /// links that appear on at least one installed path of the pair are
    /// counted — failing any other link trivially cannot hurt the pair.
    pub combos: usize,
    /// Combinations where at least one installed path survives.
    pub survivable: usize,
    /// Fraction of OD pairs that survive *every* single-link failure.
    pub pairs_fully_protected: f64,
    /// Links whose failure disconnects at least one pair (no installed
    /// path survives), with the number of pairs lost.
    pub critical_links: Vec<(ArcId, usize)>,
}

impl ResilienceReport {
    /// Fraction of examined combinations that survive.
    pub fn coverage(&self) -> f64 {
        if self.combos == 0 {
            return 1.0;
        }
        self.survivable as f64 / self.combos as f64
    }
}

/// Exhaustive single-link failure sweep over the installed tables.
pub fn single_link_failure_coverage(topo: &Topology, tables: &PathTables) -> ResilienceReport {
    let mut combos = 0usize;
    let mut survivable = 0usize;
    let mut fully_protected = 0usize;
    let mut critical: Vec<(ArcId, usize)> = Vec::new();

    // Per pair: the canonical link sets of each installed path.
    for (_, od) in tables.iter() {
        let paths = od.all();
        let link_sets: Vec<Vec<ArcId>> = paths
            .iter()
            .map(|p| {
                p.arcs(topo)
                    .map(|arcs| {
                        let mut ls: Vec<ArcId> = arcs.iter().map(|&a| topo.link_of(a)).collect();
                        ls.sort_unstable();
                        ls.dedup();
                        ls
                    })
                    .unwrap_or_default()
            })
            .collect();
        // Links touching this pair at all.
        let mut touched: Vec<ArcId> = link_sets.iter().flatten().copied().collect();
        touched.sort_unstable();
        touched.dedup();

        let mut pair_ok = true;
        for &l in &touched {
            combos += 1;
            let survives = link_sets.iter().any(|ls| !ls.contains(&l));
            if survives {
                survivable += 1;
            } else {
                pair_ok = false;
                match critical.iter_mut().find(|(cl, _)| *cl == l) {
                    Some((_, cnt)) => *cnt += 1,
                    None => critical.push((l, 1)),
                }
            }
        }
        if pair_ok {
            fully_protected += 1;
        }
    }
    critical.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let pairs = tables.len().max(1);
    ResilienceReport {
        combos,
        survivable,
        pairs_fully_protected: fully_protected as f64 / pairs as f64,
        critical_links: critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::OdPaths;
    use ecp_topo::gen::{fig3, geant};
    use ecp_topo::{Path, MBPS, MS};

    #[test]
    fn disjoint_tables_fully_covered() {
        let (t, n) = fig3(10.0 * MBPS, 16.67 * MS, false);
        let mut pt = PathTables::new();
        pt.insert(
            n.a,
            n.k,
            OdPaths {
                always_on: Path::new(vec![n.a, n.e, n.h, n.k]),
                on_demand: vec![],
                failover: Path::new(vec![n.a, n.d, n.g, n.k]),
            },
        );
        let rep = single_link_failure_coverage(&t, &pt);
        assert_eq!(rep.coverage(), 1.0);
        assert_eq!(rep.pairs_fully_protected, 1.0);
        assert!(rep.critical_links.is_empty());
    }

    #[test]
    fn identical_paths_have_no_protection() {
        // failover = always-on -> every link is shared and critical.
        let (t, n) = fig3(10.0 * MBPS, 16.67 * MS, false);
        let mut pt = PathTables::new();
        pt.insert(
            n.a,
            n.k,
            OdPaths {
                always_on: Path::new(vec![n.a, n.e, n.h, n.k]),
                on_demand: vec![],
                failover: Path::new(vec![n.a, n.e, n.h, n.k]),
            },
        );
        let rep = single_link_failure_coverage(&t, &pt);
        assert_eq!(
            rep.coverage(),
            0.0,
            "identical paths: no failure survivable"
        );
        assert_eq!(rep.pairs_fully_protected, 0.0);
        assert_eq!(
            rep.critical_links.len(),
            3,
            "each of the 3 links is critical"
        );
    }

    #[test]
    fn planner_tables_cover_vast_majority_on_geant() {
        // The §4.3 claim, verified against the actual planner output.
        let t = geant();
        let pm = ecp_power::PowerModel::cisco12000();
        let pairs = ecp_traffic::random_od_pairs(&t, 80, 3);
        let tables = crate::planner::Planner::new(&t, &pm)
            .plan_pairs(&crate::planner::PlannerConfig::default(), &pairs);
        let rep = single_link_failure_coverage(&t, &tables);
        assert!(
            rep.coverage() > 0.9,
            "a single failover path should cover the vast majority: {}",
            rep.coverage()
        );
    }

    #[test]
    fn empty_tables() {
        let t = geant();
        let rep = single_link_failure_coverage(&t, &PathTables::new());
        assert_eq!(rep.combos, 0);
        assert_eq!(rep.coverage(), 1.0);
    }
}
