//! Property-based tests for REsPoNseTE decision logic and the planner.

use ecp_power::PowerModel;
use ecp_topo::gen::random_waxman;
use ecp_topo::{NodeId, MBPS};
use proptest::prelude::*;
use respons_core::te::{
    apply_step, apply_step_into, converge_shares, decide_shares, decide_shares_into,
    waterfill_target, waterfill_target_into, PathView, TeConfig,
};
use respons_core::{Planner, PlannerConfig};

fn arb_views() -> impl Strategy<Value = Vec<PathView>> {
    proptest::collection::vec(
        ((-5e6f64..20e6), proptest::bool::weighted(0.85)).prop_map(|(headroom, available)| {
            PathView {
                headroom,
                available,
            }
        }),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Shares are always a probability vector (or all-zero when nothing
    /// is available).
    #[test]
    fn shares_form_probability_vector(
        views in arb_views(),
        start in proptest::collection::vec(0.0f64..1.0, 1..5),
        rate in 0.0f64..30e6,
        step in 0.05f64..1.0,
    ) {
        prop_assume!(views.len() == start.len());
        let mut cur = start.clone();
        let s: f64 = cur.iter().sum();
        if s > 0.0 {
            cur.iter_mut().for_each(|v| *v /= s);
        }
        let cfg = TeConfig { step, ..Default::default() };
        let new = decide_shares(rate, &views, &cur, &cfg);
        prop_assert_eq!(new.len(), views.len());
        let sum: f64 = new.iter().sum();
        let any_up = views.iter().any(|p| p.available);
        if any_up {
            prop_assert!((sum - 1.0).abs() < 1e-6, "{new:?}");
        } else {
            prop_assert_eq!(sum, 0.0);
        }
        for (i, v) in new.iter().enumerate() {
            prop_assert!(*v >= 0.0 && *v <= 1.0 + 1e-9);
            if !views[i].available {
                prop_assert_eq!(*v, 0.0, "share on failed path");
            }
        }
    }

    /// Iterating the controller against a fixed environment converges
    /// (no oscillation — the TeXCP-style stability claim).
    #[test]
    fn controller_converges(views in arb_views(), rate in 0.0f64..30e6) {
        let n = views.len();
        let start = vec![1.0 / n as f64; n];
        let cfg = TeConfig::default();
        let (fixed, rounds) = converge_shares(rate, &views, &start, &cfg, 200);
        prop_assert!(rounds < 200, "no fixpoint in 200 rounds");
        // A fixpoint: one more application changes nothing.
        let again = decide_shares(rate, &views, &fixed, &cfg);
        let delta: f64 = again.iter().zip(&fixed).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(delta < 1e-4, "not a fixpoint: {fixed:?} -> {again:?}");
    }

    /// When the first (always-on) path can absorb the whole rate, the
    /// converged allocation aggregates everything there — the energy
    /// objective.
    #[test]
    fn aggregation_when_first_path_fits(extra in 0.0f64..10e6, rate in 1e5f64..10e6) {
        let views = [
            PathView { headroom: rate + extra, available: true },
            PathView { headroom: 20e6, available: true },
        ];
        let (fixed, _) = converge_shares(rate, &views, &[0.5, 0.5], &TeConfig::default(), 100);
        prop_assert!(fixed[0] > 0.99, "not aggregated: {fixed:?}");
    }

    /// The in-place kernels are bit-identical to the allocating forms —
    /// including when the output buffer arrives dirty (non-empty, wrong
    /// length, arbitrary garbage), the reuse pattern of the zero-alloc
    /// decision path.
    #[test]
    fn into_kernels_bit_identical_even_with_dirty_buffers(
        views in arb_views(),
        start in proptest::collection::vec(0.0f64..1.0, 1..5),
        rate in 0.0f64..30e6,
        step in 0.05f64..1.0,
        dirty in proptest::collection::vec(-3.0f64..3.0, 0..8),
    ) {
        prop_assume!(views.len() == start.len());
        let mut cur = start.clone();
        let s: f64 = cur.iter().sum();
        if s > 0.0 {
            cur.iter_mut().for_each(|v| *v /= s);
        }
        let cfg = TeConfig { step, ..Default::default() };
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();

        let want_target = waterfill_target(rate, &views);
        let mut out = dirty.clone();
        waterfill_target_into(rate, &views, &mut out);
        prop_assert_eq!(bits(&out), bits(&want_target));

        let want_step = apply_step(&views, &cur, &want_target, cfg.step, cfg.min_share);
        let mut out = dirty.clone();
        apply_step_into(&views, &cur, &want_target, cfg.step, cfg.min_share, &mut out);
        prop_assert_eq!(bits(&out), bits(&want_step));

        let want = decide_shares(rate, &views, &cur, &cfg);
        let mut out = dirty;
        decide_shares_into(rate, &views, &cur, &cfg, &mut out);
        prop_assert_eq!(bits(&out), bits(&want));
    }
}

proptest! {
    // Planner property tests run fewer cases (each plans a full network).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Planner output is always structurally valid and complete for
    /// connected topologies, for any number of paths.
    #[test]
    fn planner_output_valid(seed in 0u64..50, num_paths in 2usize..5) {
        let topo = random_waxman(10, 0.6, 0.3, 10.0 * MBPS, seed);
        let pm = PowerModel::cisco12000();
        let pairs: Vec<(NodeId, NodeId)> =
            vec![(NodeId(0), NodeId(5)), (NodeId(3), NodeId(8)), (NodeId(9), NodeId(1))];
        let cfg = PlannerConfig { num_paths, ..Default::default() };
        let tables = Planner::new(&topo, &pm).plan_pairs(&cfg, &pairs);
        prop_assert_eq!(tables.len(), pairs.len());
        prop_assert_eq!(tables.validate(&topo), Ok(()));
        for (_, od) in tables.iter() {
            prop_assert_eq!(od.on_demand.len(), num_paths - 2);
        }
        // The always-on active set powers every always-on path.
        let s = tables.always_on_active(&topo);
        for (_, od) in tables.iter() {
            for a in od.always_on.arcs(&topo).unwrap() {
                prop_assert!(s.arc_on(&topo, a));
            }
        }
    }
}
