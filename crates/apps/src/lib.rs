//! # ecp-apps — application workloads over the simulated network
//!
//! The §5.4 experiments: does consolidating traffic on energy-critical
//! paths hurt applications?
//!
//! * [`streaming`] — a BulletMedia-like live streaming workload: a
//!   source streams a 600 kbps media file to N clients; a client can
//!   "play" when media blocks arrive before their play deadlines. The
//!   paper's Fig. 9 reports the percentage of clients that can play
//!   under REsPoNse-lat vs OSPF-InvCap at two load levels, plus the
//!   ≈5% block-retrieval-latency increase.
//! * [`web`] — an Apache/httperf-like closed-loop web workload: static
//!   files with sizes drawn from a SPECweb2005-banking-like
//!   distribution; the paper reports a ≈9% retrieval-latency increase
//!   under REsPoNse-lat.
//! * [`baseline`] — helpers to package a plain routing (e.g.
//!   OSPF-InvCap) as [`respons_core::PathTables`] so both systems run on
//!   the identical simulator.

pub mod baseline;
pub mod streaming;
pub mod web;

pub use baseline::tables_from_routes;
pub use streaming::{run_streaming, ClientStats, StreamingConfig, StreamingResult};
pub use web::{run_web, WebConfig, WebResult};
