//! BulletMedia-like live streaming over the simulated network (§5.4).
//!
//! "We start 50 participants, with the source streaming a file at
//! 600 kbps. [...] after 300 s, we let 50 additional clients join the
//! system [...]. Figure 9 depicts the percentage of users that can play
//! the video (i.e., media blocks are arriving before their corresponding
//! play deadlines)."

use ecp_power::PowerModel;
use ecp_simnet::{FlowId, SimConfig, Simulation};
use ecp_topo::{NodeId, Topology};
use respons_core::PathTables;
use serde::{Deserialize, Serialize};

/// Streaming workload parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Stream bitrate in bits/s (paper: 600 kbps).
    pub bitrate: f64,
    /// Media block length in seconds of content.
    pub block_duration: f64,
    /// Startup buffering before playback begins, seconds.
    pub startup_delay: f64,
    /// Total experiment duration, seconds.
    pub duration: f64,
    /// Integration step for the client loop, seconds.
    pub dt: f64,
    /// A client is "able to play" if at least this fraction of its
    /// blocks met their deadlines.
    pub playable_threshold: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            bitrate: 600e3,
            block_duration: 1.0,
            startup_delay: 3.0,
            duration: 60.0,
            dt: 0.1,
            playable_threshold: 0.99,
        }
    }
}

/// Per-client outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClientStats {
    /// Node the client sits on.
    pub node: NodeId,
    /// When it joined, seconds.
    pub joined_at: f64,
    /// Fraction of its blocks delivered before their play deadline.
    pub on_time_fraction: f64,
    /// Mean retrieval latency per block: completion time minus the
    /// block's availability time at the source, seconds.
    pub mean_block_latency: f64,
    /// Whether the client could play
    /// (`on_time_fraction ≥ playable_threshold`).
    pub playable: bool,
}

/// Whole-run outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingResult {
    /// Per-client stats.
    pub clients: Vec<ClientStats>,
    /// Mean network power fraction over the run.
    pub mean_power_fraction: f64,
}

impl StreamingResult {
    /// Percentage (0–100) of clients able to play — the Fig. 9 metric.
    pub fn playable_percent(&self) -> f64 {
        if self.clients.is_empty() {
            return 100.0;
        }
        100.0 * self.clients.iter().filter(|c| c.playable).count() as f64
            / self.clients.len() as f64
    }

    /// Mean block retrieval latency across clients, seconds.
    pub fn mean_block_latency(&self) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        self.clients
            .iter()
            .map(|c| c.mean_block_latency)
            .sum::<f64>()
            / self.clients.len() as f64
    }

    /// Playable percentage over a subset of clients (e.g. only the
    /// late joiners).
    pub fn playable_percent_where<F: Fn(&ClientStats) -> bool>(&self, pred: F) -> f64 {
        let sel: Vec<&ClientStats> = self.clients.iter().filter(|c| pred(c)).collect();
        if sel.is_empty() {
            return 100.0;
        }
        100.0 * sel.iter().filter(|c| c.playable).count() as f64 / sel.len() as f64
    }
}

struct ClientRun {
    node: NodeId,
    joined_at: f64,
    flow: Option<FlowId>,
    delivered_bits: f64,
    blocks_done: usize,
    on_time: usize,
    latency_sum: f64,
}

/// Run the streaming workload.
///
/// * `server` — the streaming source node.
/// * `clients` — `(node, join_time)` per client; multiple clients may
///   share a node (each gets its own flow).
pub fn run_streaming(
    topo: &Topology,
    power: &PowerModel,
    tables: &PathTables,
    server: NodeId,
    clients: &[(NodeId, f64)],
    cfg: &StreamingConfig,
    sim_cfg: &SimConfig,
) -> StreamingResult {
    let mut sim = Simulation::new(topo, power, tables, *sim_cfg);
    let mut runs: Vec<ClientRun> = clients
        .iter()
        .map(|&(node, joined_at)| ClientRun {
            node,
            joined_at,
            flow: None,
            delivered_bits: 0.0,
            blocks_done: 0,
            on_time: 0,
            latency_sum: 0.0,
        })
        .collect();

    let block_bits = cfg.bitrate * cfg.block_duration;
    // One-way propagation latency per client (always-on path of its OD
    // pair) — added to block retrieval latency; this is what separates
    // REsPoNse-lat from InvCap at the application level.
    let prop: Vec<f64> = runs
        .iter()
        .map(|r| {
            tables
                .get(server, r.node)
                .map(|od| od.always_on.latency(topo))
                .unwrap_or(0.0)
        })
        .collect();
    let mut t = 0.0;
    while t < cfg.duration {
        let t_next = (t + cfg.dt).min(cfg.duration);
        // Join clients whose time has come.
        for run in runs.iter_mut() {
            if run.flow.is_none() && run.joined_at <= t + 1e-9 {
                run.flow = Some(sim.add_flow(tables, server, run.node, cfg.bitrate));
            }
        }
        sim.run_until(t_next);
        // Integrate delivery and account blocks.
        for (ri, run) in runs.iter_mut().enumerate() {
            let f = match run.flow {
                Some(f) => f,
                None => continue,
            };
            let rate = sim.delivered_rate(f);
            run.delivered_bits += rate * (t_next - t);
            while run.delivered_bits >= (run.blocks_done + 1) as f64 * block_bits {
                run.blocks_done += 1;
                let k = run.blocks_done as f64;
                // Block k becomes available at the source when its
                // content has been produced (live stream).
                let available = run.joined_at + k * cfg.block_duration;
                let deadline = run.joined_at + cfg.startup_delay + k * cfg.block_duration;
                // Completion as observed by the client: last bit leaves
                // the source at t_next and propagates down the path.
                let done = t_next + prop[ri];
                if done <= deadline + 1e-9 {
                    run.on_time += 1;
                }
                run.latency_sum += (done - available).max(0.0);
            }
        }
        t = t_next;
    }

    let clients_out: Vec<ClientStats> = runs
        .iter()
        .map(|r| {
            // Blocks the client *should* have played by the end.
            let expected = (((cfg.duration - r.joined_at - cfg.startup_delay) / cfg.block_duration)
                .floor() as usize)
                .max(1);
            let on_time_fraction = r.on_time.min(expected) as f64 / expected as f64;
            ClientStats {
                node: r.node,
                joined_at: r.joined_at,
                on_time_fraction,
                mean_block_latency: if r.blocks_done > 0 {
                    r.latency_sum / r.blocks_done as f64
                } else {
                    f64::INFINITY
                },
                playable: on_time_fraction >= cfg.playable_threshold,
            }
        })
        .collect();
    StreamingResult {
        clients: clients_out,
        mean_power_fraction: sim.recorder().mean_power_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_power::PowerModel;
    use ecp_topo::gen::fig3_click;
    use respons_core::{Planner, PlannerConfig};

    fn setup() -> (Topology, PathTables, ecp_topo::gen::Fig3Nodes) {
        let (t, n) = fig3_click();
        let pm = PowerModel::cisco12000();
        let tables =
            Planner::new(&t, &pm).plan_pairs(&PlannerConfig::default(), &[(n.k, n.a), (n.k, n.c)]);
        (t, tables, n)
    }

    #[test]
    fn uncongested_clients_all_play() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let cfg = StreamingConfig {
            duration: 30.0,
            ..Default::default()
        };
        // Two clients, 600 kbps each: trivially fits 10 Mbps paths.
        let res = run_streaming(
            &t,
            &pm,
            &tables,
            n.k,
            &[(n.a, 0.0), (n.c, 0.0)],
            &cfg,
            &SimConfig::default(),
        );
        assert_eq!(res.playable_percent(), 100.0, "{:?}", res.clients);
        assert!(res.mean_block_latency() < 2.0 * cfg.block_duration);
        assert!(res.mean_power_fraction < 1.0, "parts of the net sleep");
    }

    #[test]
    fn overload_degrades_playability() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let cfg = StreamingConfig {
            duration: 30.0,
            bitrate: 8e6,
            ..Default::default()
        };
        // Three 8 Mbps streams toward A exceed every path combination
        // (A reachable via 2 disjoint 10 Mbps paths only).
        let res = run_streaming(
            &t,
            &pm,
            &tables,
            n.k,
            &[(n.a, 0.0), (n.a, 0.0), (n.a, 0.0)],
            &cfg,
            &SimConfig::default(),
        );
        assert!(res.playable_percent() < 100.0);
    }

    #[test]
    fn late_joiners_tracked_separately() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let cfg = StreamingConfig {
            duration: 20.0,
            ..Default::default()
        };
        let res = run_streaming(
            &t,
            &pm,
            &tables,
            n.k,
            &[(n.a, 0.0), (n.c, 10.0)],
            &cfg,
            &SimConfig::default(),
        );
        assert_eq!(res.clients.len(), 2);
        assert_eq!(res.clients[1].joined_at, 10.0);
        let late = res.playable_percent_where(|c| c.joined_at > 5.0);
        assert_eq!(late, 100.0);
    }

    #[test]
    fn empty_client_list() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let cfg = StreamingConfig {
            duration: 5.0,
            ..Default::default()
        };
        let res = run_streaming(&t, &pm, &tables, n.k, &[], &cfg, &SimConfig::default());
        assert_eq!(res.playable_percent(), 100.0);
        assert_eq!(res.mean_block_latency(), 0.0);
    }
}
