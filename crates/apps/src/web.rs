//! Apache/httperf-like closed-loop web workload (§5.4).
//!
//! "One of the stub nodes is running the Apache Web server, while the
//! remaining four stub nodes are using httperf. The Web workload in our
//! case consists of 100 static files with the file size drawn at random
//! to follow the online banking file distribution from the SPECweb2005
//! benchmark. The web retrieval latency increases by only 9% when we
//! switch from OSPF-InvCap to REsPoNse."

use ecp_power::PowerModel;
use ecp_simnet::{FlowId, SimConfig, Simulation};
use ecp_topo::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use respons_core::PathTables;
use serde::{Deserialize, Serialize};

/// Web workload parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WebConfig {
    /// Number of distinct static files (paper: 100).
    pub num_files: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Think time between a response and the next request, seconds.
    pub think_time: f64,
    /// Client access-link rate cap in bits/s (models the httperf host
    /// NIC; transfers cannot exceed it).
    pub access_rate: f64,
    /// Integration step, seconds.
    pub dt: f64,
    /// Workload seed (file sizes and request order).
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            num_files: 100,
            requests_per_client: 50,
            think_time: 0.2,
            access_rate: 20e6,
            dt: 0.02,
            seed: 2005,
        }
    }
}

/// Whole-run outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebResult {
    /// Retrieval latency of every completed request, seconds.
    pub latencies: Vec<f64>,
    /// Requests that did not complete before the run ended.
    pub unfinished: usize,
    /// Mean network power fraction over the run.
    pub mean_power_fraction: f64,
}

impl WebResult {
    /// Mean retrieval latency, seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
    }

    /// Latency percentile (0–100), nearest rank.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
        v[idx.min(v.len() - 1)]
    }
}

/// SPECweb2005-banking-like static file sizes: log-normal body (median
/// ≈ 12 KiB) with a clipped heavy tail, in bytes.
pub fn specweb_like_sizes(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Irwin–Hall(4) ≈ normal, unit variance after scaling.
            let z: f64 =
                ((0..4).map(|_| rng.gen::<f64>()).sum::<f64>() - 2.0) / (4.0f64 / 12.0).sqrt();
            let bytes = (9.4 + 1.1 * z).exp(); // median e^9.4 ≈ 12.1 KiB
            bytes.clamp(512.0, 2_000_000.0)
        })
        .collect()
}

enum ClientState {
    Thinking { until: f64 },
    Transferring { remaining_bits: f64, started: f64 },
    Done,
}

struct WebClient {
    node: NodeId,
    flow: FlowId,
    state: ClientState,
    issued: usize,
}

/// Run the web workload: each client node issues
/// `requests_per_client` sequential GETs against `server`.
pub fn run_web(
    topo: &Topology,
    power: &PowerModel,
    tables: &PathTables,
    server: NodeId,
    client_nodes: &[NodeId],
    cfg: &WebConfig,
    sim_cfg: &SimConfig,
) -> WebResult {
    let sizes = specweb_like_sizes(cfg.num_files, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBEEF);
    let mut sim = Simulation::new(topo, power, tables, *sim_cfg);
    let mut clients: Vec<WebClient> = client_nodes
        .iter()
        .map(|&node| {
            let flow = sim.add_flow(tables, server, node, 0.0);
            WebClient {
                node,
                flow,
                state: ClientState::Thinking { until: 0.0 },
                issued: 0,
            }
        })
        .collect();

    // Per-OD one-way latency for the request leg (request is tiny: costs
    // one propagation delay each way; the data transfer dominates).
    let rtt_of = |node: NodeId| -> f64 {
        tables
            .get(server, node)
            .map(|od| 2.0 * od.always_on.latency(topo))
            .unwrap_or(0.0)
    };

    let mut latencies = Vec::new();
    let hard_stop = 3600.0;
    let mut t = 0.0;
    loop {
        let all_done = clients.iter().all(|c| matches!(c.state, ClientState::Done));
        if all_done || t >= hard_stop {
            break;
        }
        let t_next = t + cfg.dt;
        // Progress transfers using the delivered rate of the last step.
        for c in clients.iter_mut() {
            match c.state {
                ClientState::Transferring {
                    ref mut remaining_bits,
                    started,
                } => {
                    let rate = sim.delivered_rate(c.flow).min(cfg.access_rate);
                    *remaining_bits -= rate * cfg.dt;
                    if *remaining_bits <= 0.0 {
                        latencies.push((t_next - started) + rtt_of(c.node));
                        sim.schedule_demand(t_next, c.flow, 0.0);
                        c.state = if c.issued >= cfg.requests_per_client {
                            ClientState::Done
                        } else {
                            ClientState::Thinking {
                                until: t_next + cfg.think_time,
                            }
                        };
                    }
                }
                ClientState::Thinking { until } if until <= t + 1e-12 => {
                    let size_bits = 8.0 * sizes[rng.gen_range(0..sizes.len())];
                    c.issued += 1;
                    sim.schedule_demand(t, c.flow, cfg.access_rate);
                    c.state = ClientState::Transferring {
                        remaining_bits: size_bits,
                        started: t,
                    };
                }
                _ => {}
            }
        }
        sim.run_until(t_next);
        t = t_next;
    }

    let unfinished = clients
        .iter()
        .map(|c| {
            let pending = match c.state {
                ClientState::Done => 0,
                ClientState::Transferring { .. } => 1,
                ClientState::Thinking { .. } => 0,
            };
            (cfg.requests_per_client - c.issued) + pending
        })
        .sum();
    WebResult {
        latencies,
        unfinished,
        mean_power_fraction: sim.recorder().mean_power_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_power::PowerModel;
    use ecp_topo::gen::fig3_click;
    use respons_core::{Planner, PlannerConfig};

    fn setup() -> (Topology, PathTables, ecp_topo::gen::Fig3Nodes) {
        let (t, n) = fig3_click();
        let pm = PowerModel::cisco12000();
        let tables =
            Planner::new(&t, &pm).plan_pairs(&PlannerConfig::default(), &[(n.k, n.a), (n.k, n.c)]);
        (t, tables, n)
    }

    #[test]
    fn file_sizes_have_sane_distribution() {
        let sizes = specweb_like_sizes(1000, 1);
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(mean > 5_000.0 && mean < 100_000.0, "mean {mean} bytes");
        assert!(sizes.iter().all(|&s| (512.0..=2_000_000.0).contains(&s)));
        assert_eq!(specweb_like_sizes(10, 7), specweb_like_sizes(10, 7));
    }

    #[test]
    fn all_requests_complete_and_latency_positive() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let cfg = WebConfig {
            requests_per_client: 5,
            ..Default::default()
        };
        let res = run_web(
            &t,
            &pm,
            &tables,
            n.k,
            &[n.a, n.c],
            &cfg,
            &SimConfig::default(),
        );
        assert_eq!(res.unfinished, 0);
        assert_eq!(res.latencies.len(), 10);
        for &l in &res.latencies {
            // At least one RTT (3 hops x 16.67 ms x 2).
            assert!(l >= 0.1, "latency {l}");
            assert!(l < 30.0);
        }
        assert!(res.mean_latency() > 0.0);
        assert!(res.percentile(100.0) >= res.percentile(0.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let cfg = WebConfig {
            requests_per_client: 3,
            ..Default::default()
        };
        let a = run_web(&t, &pm, &tables, n.k, &[n.a], &cfg, &SimConfig::default());
        let b = run_web(&t, &pm, &tables, n.k, &[n.a], &cfg, &SimConfig::default());
        assert_eq!(a.latencies, b.latencies);
        let cfg2 = WebConfig { seed: 9, ..cfg };
        let c = run_web(&t, &pm, &tables, n.k, &[n.a], &cfg2, &SimConfig::default());
        assert_ne!(a.latencies, c.latencies);
    }

    #[test]
    fn empty_clients() {
        let (t, tables, n) = setup();
        let pm = PowerModel::cisco12000();
        let res = run_web(
            &t,
            &pm,
            &tables,
            n.k,
            &[],
            &WebConfig::default(),
            &SimConfig::default(),
        );
        assert_eq!(res.latencies.len(), 0);
        assert_eq!(res.mean_latency(), 0.0);
    }
}
