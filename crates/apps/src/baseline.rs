//! Packaging plain routings as path tables.
//!
//! The Fig. 9 / §5.4 comparison runs the *same* applications over
//! REsPoNse-chosen paths and over OSPF-InvCap. To keep everything on one
//! simulator, a conventional single-path routing is expressed as
//! [`PathTables`] whose every table points at the same path — the
//! network then never sleeps anything on those routes (all used links
//! are "always-on"), which is exactly how a legacy network behaves.

use ecp_routing::RouteSet;
use respons_core::tables::{OdPaths, PathTables};

/// Wrap a single-path routing into degenerate path tables (always-on =
/// on-demand = failover = the routing's path).
pub fn tables_from_routes(routes: &RouteSet) -> PathTables {
    let mut t = PathTables::new();
    for (&(o, d), p) in routes.iter() {
        t.insert(
            o,
            d,
            OdPaths {
                always_on: p.clone(),
                on_demand: vec![],
                failover: p.clone(),
            },
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_routing::ospf_invcap;
    use ecp_topo::gen::geant;
    use ecp_topo::NodeId;

    #[test]
    fn wraps_every_route() {
        let t = geant();
        let pairs = vec![(NodeId(0), NodeId(5)), (NodeId(3), NodeId(9))];
        let rs = ospf_invcap(&t, &pairs, None);
        let tables = tables_from_routes(&rs);
        assert_eq!(tables.len(), 2);
        let od = tables.get(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(&od.always_on, rs.get(NodeId(0), NodeId(5)).unwrap());
        assert_eq!(od.on_demand.len(), 0);
        assert_eq!(od.failover, od.always_on);
        assert_eq!(tables.validate(&t), Ok(()));
    }
}
