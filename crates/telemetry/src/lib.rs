//! # ecp-telemetry — structured tracing and metrics for the simulation stack
//!
//! The paper's story is about *dynamics*: online TE rounds reacting to
//! load shifts, links draining into low-power sleep, failover paths
//! absorbing failures. This crate gives the simulator a first-class
//! window into those dynamics without perturbing them:
//!
//! * [`TelemetryEvent`] — structured events (control-round spans, power
//!   transitions with idle-drain timing, TE reconfigs, failures and
//!   repairs, per-round arc-load summaries).
//! * [`TelemetrySink`] — a statically-dispatched facade. The simulator
//!   is generic over the sink; with the default [`NoopSink`]
//!   (`ENABLED = false`) every instrumentation site folds away at
//!   compile time, so golden hashes and benchmark numbers are untouched
//!   when tracing is off.
//! * [`JsonlSink`] — records events as deterministic JSON lines
//!   (byte-identical across thread counts and shard layouts, because
//!   simulation is single-threaded per run and events are emitted in
//!   event order) and aggregates [`Counter`]s / [`Hist`]ograms into a
//!   [`TelemetrySnapshot`] for embedding in reports.
//! * An optional counting global allocator (feature `count-allocs`)
//!   used by benches to measure allocations per control round — the
//!   baseline for the ROADMAP "zero-alloc decision path" item.

use serde::{Deserialize, Serialize};

#[cfg(feature = "count-allocs")]
pub mod alloc_count;

pub mod profile;

pub use profile::{
    Clock, FakeClock, MonoClock, SpanSink, SpanTiming, TimingSnapshot, SPAN_DUR_BOUNDS,
};

/// Which way a link power transition went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerKind {
    /// Link went to sleep after draining idle.
    Sleep,
    /// A sleeping link was assigned traffic and began waking.
    WakeStart,
    /// A waking link completed its wake-up and became active.
    WakeDone,
}

/// Which kind of network element an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Element {
    /// An undirected link (index into the topology link table).
    Link,
    /// A node.
    Node,
}

/// One structured trace event. Every variant carries the simulation
/// time `t` (seconds) as its first field; events are emitted in
/// simulation order, so a trace is totally ordered by emission index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A TE control round completed (one span per round).
    ControlRound {
        /// Simulation time of the round.
        t: f64,
        /// True for failure-triggered immediate rounds.
        immediate: bool,
        /// Number of edge agents (flows) in the round.
        agents: u32,
        /// Agents that ran the decision kernel this round.
        decided: u32,
        /// Agents skipped because their observations were clean
        /// (incremental accounting + memoryless policy).
        skipped_clean: u32,
        /// Agents deferred to phased per-agent control events.
        deferred_phased: u32,
        /// Decisions whose applied shares actually changed.
        share_changes: u32,
        /// Waterfill inner-loop iterations spent in the round.
        waterfill_iters: u64,
    },
    /// Per-round arc-load summary, taken over the loads the agents of
    /// the round observed (pre-decision).
    ArcLoads {
        /// Simulation time of the round.
        t: f64,
        /// Maximum arc utilization (load / capacity) over powered arcs.
        max_util: f64,
        /// Mean arc utilization over powered arcs.
        mean_util: f64,
        /// Arcs above the TE threshold utilization.
        overloaded: u32,
    },
    /// A link changed power state.
    PowerTransition {
        /// Simulation time.
        t: f64,
        /// Link index.
        link: u32,
        /// Which transition.
        kind: PowerKind,
        /// For [`PowerKind::Sleep`]: seconds the link sat idle before
        /// sleeping (the idle-drain time). Zero otherwise.
        idle_s: f64,
    },
    /// The TE configuration was replaced mid-run.
    TeReconfig {
        /// Simulation time.
        t: f64,
        /// New utilization threshold.
        threshold: f64,
        /// New per-round step bound.
        step: f64,
        /// New minimum share.
        min_share: f64,
    },
    /// An element failed (`detected: false`) or the failure became
    /// known to agents (`detected: true`).
    Failure {
        /// Simulation time.
        t: f64,
        /// Element kind.
        element: Element,
        /// Element index.
        id: u32,
        /// Whether this is the detection event.
        detected: bool,
    },
    /// An element was repaired, or the repair became known.
    Repair {
        /// Simulation time.
        t: f64,
        /// Element kind.
        element: Element,
        /// Element index.
        id: u32,
        /// Whether this is the detection event.
        detected: bool,
    },
    /// A profiling span closed ([`SpanSink`] only). Unlike the other
    /// variants this carries *wall-clock* durations from a [`Clock`];
    /// `t` is still simulation time (the time of the last simulation
    /// event seen before the span closed) so traces with spans stay
    /// totally ordered for `trace validate`.
    Span {
        /// Simulation time the span closed at.
        t: f64,
        /// Span name ([`profile::SpanName::name`]).
        name: String,
        /// Wall seconds from profiling start to span entry.
        start_s: f64,
        /// Wall seconds the span was open.
        dur_s: f64,
        /// Wall seconds not attributed to child spans.
        self_s: f64,
        /// Nesting depth at entry (0 = root span).
        depth: u32,
    },
}

impl TelemetryEvent {
    /// Simulation time the event was emitted at.
    pub fn time(&self) -> f64 {
        match *self {
            TelemetryEvent::ControlRound { t, .. }
            | TelemetryEvent::ArcLoads { t, .. }
            | TelemetryEvent::PowerTransition { t, .. }
            | TelemetryEvent::TeReconfig { t, .. }
            | TelemetryEvent::Failure { t, .. }
            | TelemetryEvent::Repair { t, .. }
            | TelemetryEvent::Span { t, .. } => t,
        }
    }

    /// Short kind name (the JSON external tag).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::ControlRound { .. } => "ControlRound",
            TelemetryEvent::ArcLoads { .. } => "ArcLoads",
            TelemetryEvent::PowerTransition { .. } => "PowerTransition",
            TelemetryEvent::TeReconfig { .. } => "TeReconfig",
            TelemetryEvent::Failure { .. } => "Failure",
            TelemetryEvent::Repair { .. } => "Repair",
            TelemetryEvent::Span { .. } => "Span",
        }
    }
}

/// Names of the profiling spans recorded by [`SpanSink`]. Fixed like
/// [`Counter`] so per-span statistics live in a flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanName {
    /// One event popped off the simulator queue and dispatched.
    EventDrain,
    /// Incremental load-accounting flush after an event.
    LoadFlush,
    /// Control round: arc-load snapshot + round summary emission.
    RoundSnapshot,
    /// Control round: building one agent's `Observation`.
    RoundObserve,
    /// Control round: one agent's policy decision kernel.
    RoundDecide,
    /// Control round: applying decided shares to flows.
    RoundApply,
    /// Control round: committing wake/sleep power transitions.
    RoundInstall,
    /// WakeDone / SleepCheck power-state bookkeeping.
    PowerTransition,
    /// Failure / repair detection handling (nests the immediate round).
    FailureHandling,
    /// Scenario resolve: topology + power + pair construction.
    ResolveTopo,
    /// Scenario resolve: routing-table planning (Dijkstra/Yen).
    ResolvePlan,
    /// Max-feasible-volume oracle probe.
    ResolveOracle,
    /// Resolve cache served an already-resolved scenario.
    ResolveCacheHit,
    /// Resolve cache had to resolve from scratch.
    ResolveCacheMiss,
    /// One full scenario simulation (event loop + aggregation).
    ScenarioRun,
    /// One campaign run unit (resolve + simulate + store).
    CampaignRun,
}

impl SpanName {
    /// Every span, in [`TimingSnapshot`] order.
    pub const ALL: [SpanName; 16] = [
        SpanName::EventDrain,
        SpanName::LoadFlush,
        SpanName::RoundSnapshot,
        SpanName::RoundObserve,
        SpanName::RoundDecide,
        SpanName::RoundApply,
        SpanName::RoundInstall,
        SpanName::PowerTransition,
        SpanName::FailureHandling,
        SpanName::ResolveTopo,
        SpanName::ResolvePlan,
        SpanName::ResolveOracle,
        SpanName::ResolveCacheHit,
        SpanName::ResolveCacheMiss,
        SpanName::ScenarioRun,
        SpanName::CampaignRun,
    ];

    /// Stable snake_case name used in traces and timing snapshots.
    pub fn name(self) -> &'static str {
        match self {
            SpanName::EventDrain => "event_drain",
            SpanName::LoadFlush => "load_flush",
            SpanName::RoundSnapshot => "round_snapshot",
            SpanName::RoundObserve => "round_observe",
            SpanName::RoundDecide => "round_decide",
            SpanName::RoundApply => "round_apply",
            SpanName::RoundInstall => "round_install",
            SpanName::PowerTransition => "power_transition",
            SpanName::FailureHandling => "failure_handling",
            SpanName::ResolveTopo => "resolve_topo",
            SpanName::ResolvePlan => "resolve_plan",
            SpanName::ResolveOracle => "resolve_oracle",
            SpanName::ResolveCacheHit => "resolve_cache_hit",
            SpanName::ResolveCacheMiss => "resolve_cache_miss",
            SpanName::ScenarioRun => "scenario_run",
            SpanName::CampaignRun => "campaign_run",
        }
    }

    /// Position in [`SpanName::ALL`].
    pub fn index(self) -> usize {
        SpanName::ALL.iter().position(|s| *s == self).unwrap()
    }
}

/// Monotonic counters maintained by recording sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Discrete events popped off the simulator queue.
    EventsProcessed,
    /// TE control rounds executed.
    ControlRounds,
    /// Failure-triggered immediate rounds.
    ImmediateRounds,
    /// Agent decisions that ran the kernel.
    AgentDecisions,
    /// Agent decisions skipped with clean observations.
    SkippedClean,
    /// Agent decisions deferred to phased control events.
    DeferredPhased,
    /// Decisions whose applied shares changed.
    ShareChanges,
    /// Dirty arcs recomputed by incremental load accounting.
    DirtyArcRecomputes,
    /// Waterfill inner-loop iterations.
    WaterfillIterations,
    /// Link power transitions (sleep + wake-start + wake-done).
    PowerTransitions,
    /// Mid-run TE reconfigurations.
    TeReconfigs,
    /// Failures injected (links + nodes).
    FailuresInjected,
    /// Repairs injected (links + nodes).
    RepairsInjected,
    /// Recorder samples taken.
    Samples,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 14] = [
        Counter::EventsProcessed,
        Counter::ControlRounds,
        Counter::ImmediateRounds,
        Counter::AgentDecisions,
        Counter::SkippedClean,
        Counter::DeferredPhased,
        Counter::ShareChanges,
        Counter::DirtyArcRecomputes,
        Counter::WaterfillIterations,
        Counter::PowerTransitions,
        Counter::TeReconfigs,
        Counter::FailuresInjected,
        Counter::RepairsInjected,
        Counter::Samples,
    ];

    /// Stable snake_case name used in snapshots and traces.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsProcessed => "events_processed",
            Counter::ControlRounds => "control_rounds",
            Counter::ImmediateRounds => "immediate_rounds",
            Counter::AgentDecisions => "agent_decisions",
            Counter::SkippedClean => "skipped_clean",
            Counter::DeferredPhased => "deferred_phased",
            Counter::ShareChanges => "share_changes",
            Counter::DirtyArcRecomputes => "dirty_arc_recomputes",
            Counter::WaterfillIterations => "waterfill_iterations",
            Counter::PowerTransitions => "power_transitions",
            Counter::TeReconfigs => "te_reconfigs",
            Counter::FailuresInjected => "failures_injected",
            Counter::RepairsInjected => "repairs_injected",
            Counter::Samples => "samples",
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// Histograms maintained by recording sinks (fixed bucket bounds so
/// snapshots are layout-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Waterfill iterations per agent decision.
    WaterfillPerDecision,
    /// Seconds a link drained idle before sleeping.
    IdleDrainS,
    /// Agents that decided per control round.
    DecidedPerRound,
}

impl Hist {
    /// Every histogram, in snapshot order.
    pub const ALL: [Hist; 3] = [
        Hist::WaterfillPerDecision,
        Hist::IdleDrainS,
        Hist::DecidedPerRound,
    ];

    /// Stable snake_case name used in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Hist::WaterfillPerDecision => "waterfill_per_decision",
            Hist::IdleDrainS => "idle_drain_s",
            Hist::DecidedPerRound => "decided_per_round",
        }
    }

    /// Upper bucket bounds (inclusive); an implicit +inf bucket
    /// follows the last bound.
    pub fn bounds(self) -> &'static [f64] {
        match self {
            Hist::WaterfillPerDecision => &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            Hist::IdleDrainS => &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0],
            Hist::DecidedPerRound => &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0],
        }
    }

    fn index(self) -> usize {
        Hist::ALL.iter().position(|h| *h == self).unwrap()
    }
}

/// One counter in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Counter name ([`Counter::name`]).
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One histogram in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name ([`Hist::name`]).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// `(upper_bound, count_in_bucket)` pairs. The final pair is the
    /// overflow bucket; its bound is the sentinel `-1.0` (infinity is
    /// not representable in JSON).
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket that crosses the target rank. The first
    /// populated bucket interpolates up from `min`, the overflow bucket
    /// toward `max`, and the result is clamped to `[min, max]` — so the
    /// estimate is exact for single-bucket data and never leaves the
    /// observed range (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut lower = self.min;
        for &(bound, n) in &self.buckets {
            if n == 0 {
                continue;
            }
            // The overflow bucket carries the sentinel bound -1.0; its
            // real upper edge is the observed max.
            let upper = if bound < 0.0 {
                self.max
            } else {
                bound.clamp(lower, self.max)
            };
            if (cum + n) as f64 >= target {
                let within = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * within).clamp(self.min, self.max);
            }
            cum += n;
            lower = upper;
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Aggregated metrics for one run, embedded in `ScenarioReport` and
/// campaign result stores when telemetry is enabled.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Total trace events emitted.
    pub events: u64,
    /// Time of the last control round that changed any share — the
    /// settling time of the run's transient (None if no round changed
    /// shares).
    #[serde(default)]
    pub settle_time_s: Option<f64>,
    /// Peak overloaded-arc count over all rounds.
    #[serde(default)]
    pub peak_overloaded_arcs: u32,
    /// Peak max arc utilization over all rounds.
    #[serde(default)]
    pub peak_max_util: f64,
    /// Final counter values (in [`Counter::ALL`] order).
    pub counters: Vec<CounterSample>,
    /// Final histograms (in [`Hist::ALL`] order).
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Look up a counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Statically-dispatched telemetry facade.
///
/// The simulator is generic over `S: TelemetrySink`; call sites guard
/// event construction with `if S::ENABLED { ... }`, which the compiler
/// folds away entirely for [`NoopSink`]. Implementations must be cheap
/// and must not observe wall-clock time or randomness (traces must be
/// deterministic).
pub trait TelemetrySink {
    /// Whether this sink records anything. `false` lets every
    /// instrumentation site compile out.
    const ENABLED: bool;

    /// Record a structured event.
    fn emit(&mut self, ev: &TelemetryEvent);

    /// Add `n` to a counter.
    fn add(&mut self, c: Counter, n: u64);

    /// Observe a value into a histogram.
    fn observe(&mut self, h: Hist, v: f64);

    /// Whether this sink records profiling spans. Defaults to `false`
    /// so only [`SpanSink`] pays for the clock reads; call sites guard
    /// with `if S::SPANS { ... }` exactly like `ENABLED`.
    const SPANS: bool = false;

    /// Open a profiling span. No-op unless `SPANS`.
    #[inline(always)]
    fn span_enter(&mut self, _name: SpanName) {}

    /// Close the innermost profiling span (must match the last
    /// `span_enter`). No-op unless `SPANS`.
    #[inline(always)]
    fn span_exit(&mut self, _name: SpanName) {}

    /// Snapshot aggregated metrics, if this sink keeps any.
    fn snapshot(&self) -> Option<TelemetrySnapshot> {
        None
    }
}

/// The default sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: &TelemetryEvent) {}

    #[inline(always)]
    fn add(&mut self, _c: Counter, _n: u64) {}

    #[inline(always)]
    fn observe(&mut self, _h: Hist, _v: f64) {}
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HistState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl HistState {
    fn new(h: Hist) -> Self {
        HistState::with_bounds(h.bounds())
    }

    /// Empty state sized for `bounds` (one bucket per bound plus the
    /// overflow bucket). Used by [`SpanSink`] with span-duration
    /// bounds that are not part of the [`Hist`] registry.
    pub(crate) fn with_bounds(bounds: &[f64]) -> Self {
        HistState {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; bounds.len() + 1],
        }
    }

    pub(crate) fn observe(&mut self, bounds: &[f64], v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        self.buckets[idx] += 1;
    }

    fn snapshot(&self, h: Hist) -> HistogramSnapshot {
        self.snapshot_named(h.name(), h.bounds())
    }

    pub(crate) fn snapshot_named(&self, name: &str, bounds: &[f64]) -> HistogramSnapshot {
        let mut buckets: Vec<(f64, u64)> = bounds
            .iter()
            .zip(&self.buckets)
            .map(|(&b, &n)| (b, n))
            .collect();
        // Overflow bucket: bound sentinel -1.0 (infinity is not
        // representable in JSON).
        buckets.push((-1.0, self.buckets[bounds.len()]));
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// A recording sink: serializes every event to one deterministic JSON
/// line and aggregates counters, histograms, and settling statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonlSink {
    lines: Vec<String>,
    events: u64,
    counters: [u64; Counter::ALL.len()],
    hists: Vec<HistState>,
    settle_time_s: Option<f64>,
    peak_overloaded_arcs: u32,
    peak_max_util: f64,
}

impl JsonlSink {
    /// Empty sink.
    pub fn new() -> Self {
        JsonlSink {
            lines: Vec::new(),
            events: 0,
            counters: [0; Counter::ALL.len()],
            hists: Hist::ALL.iter().map(|&h| HistState::new(h)).collect(),
            settle_time_s: None,
            peak_overloaded_arcs: 0,
            peak_max_util: 0.0,
        }
    }

    /// Recorded JSON lines, in emission order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consume the sink, returning its lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }
}

impl Default for JsonlSink {
    fn default() -> Self {
        JsonlSink::new()
    }
}

impl TelemetrySink for JsonlSink {
    const ENABLED: bool = true;

    fn emit(&mut self, ev: &TelemetryEvent) {
        self.events += 1;
        match *ev {
            TelemetryEvent::ControlRound {
                t, share_changes, ..
            } if share_changes > 0 => {
                self.settle_time_s = Some(t);
            }
            TelemetryEvent::ArcLoads {
                max_util,
                overloaded,
                ..
            } => {
                self.peak_overloaded_arcs = self.peak_overloaded_arcs.max(overloaded);
                if max_util > self.peak_max_util {
                    self.peak_max_util = max_util;
                }
            }
            _ => {}
        }
        self.lines
            .push(serde_json::to_string(ev).expect("telemetry events always serialize"));
    }

    fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    fn observe(&mut self, h: Hist, v: f64) {
        self.hists[h.index()].observe(h.bounds(), v);
    }

    fn snapshot(&self) -> Option<TelemetrySnapshot> {
        Some(TelemetrySnapshot {
            events: self.events,
            settle_time_s: self.settle_time_s,
            peak_overloaded_arcs: self.peak_overloaded_arcs,
            peak_max_util: self.peak_max_util,
            counters: Counter::ALL
                .iter()
                .map(|&c| CounterSample {
                    name: c.name().to_string(),
                    value: self.counters[c.index()],
                })
                .collect(),
            histograms: Hist::ALL
                .iter()
                .map(|&h| self.hists[h.index()].snapshot(h))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(t: f64, share_changes: u32) -> TelemetryEvent {
        TelemetryEvent::ControlRound {
            t,
            immediate: false,
            agents: 4,
            decided: 4,
            skipped_clean: 0,
            deferred_phased: 0,
            share_changes,
            waterfill_iters: 8,
        }
    }

    #[test]
    fn noop_sink_is_disabled_and_snapshotless() {
        let mut s = NoopSink;
        const { assert!(!NoopSink::ENABLED) };
        s.emit(&round(1.0, 2));
        s.add(Counter::ControlRounds, 1);
        s.observe(Hist::DecidedPerRound, 4.0);
        assert!(s.snapshot().is_none());
    }

    #[test]
    fn jsonl_sink_records_lines_and_counters() {
        let mut s = JsonlSink::new();
        s.emit(&round(1.0, 2));
        s.emit(&round(2.0, 0));
        s.add(Counter::ControlRounds, 2);
        s.add(Counter::AgentDecisions, 8);
        s.observe(Hist::DecidedPerRound, 4.0);
        s.observe(Hist::DecidedPerRound, 4.0);
        assert_eq!(s.lines().len(), 2);
        assert!(s.lines()[0].starts_with("{\"ControlRound\":"));
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.events, 2);
        assert_eq!(snap.counter("control_rounds"), 2);
        assert_eq!(snap.counter("agent_decisions"), 8);
        // Settle time = last round with share changes.
        assert_eq!(snap.settle_time_s, Some(1.0));
        let h = snap.histogram("decided_per_round").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn arc_loads_track_peaks() {
        let mut s = JsonlSink::new();
        s.emit(&TelemetryEvent::ArcLoads {
            t: 1.0,
            max_util: 0.8,
            mean_util: 0.3,
            overloaded: 2,
        });
        s.emit(&TelemetryEvent::ArcLoads {
            t: 2.0,
            max_util: 0.6,
            mean_util: 0.2,
            overloaded: 5,
        });
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.peak_overloaded_arcs, 5);
        assert!((snap.peak_max_util - 0.8).abs() < 1e-12);
    }

    #[test]
    fn events_round_trip_through_json() {
        let evs = vec![
            round(0.5, 1),
            TelemetryEvent::PowerTransition {
                t: 3.0,
                link: 7,
                kind: PowerKind::Sleep,
                idle_s: 2.5,
            },
            TelemetryEvent::TeReconfig {
                t: 4.0,
                threshold: 0.5,
                step: 0.1,
                min_share: 0.0,
            },
            TelemetryEvent::Failure {
                t: 5.0,
                element: Element::Link,
                id: 3,
                detected: false,
            },
            TelemetryEvent::Repair {
                t: 6.0,
                element: Element::Node,
                id: 1,
                detected: true,
            },
            TelemetryEvent::ArcLoads {
                t: 7.0,
                max_util: 0.4,
                mean_util: 0.1,
                overloaded: 0,
            },
        ];
        for ev in evs {
            let line = serde_json::to_string(&ev).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, ev);
            assert!(line.contains(ev.kind()));
            assert!(ev.time() > 0.0);
        }
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut s = JsonlSink::new();
        s.observe(Hist::IdleDrainS, 0.05);
        s.observe(Hist::IdleDrainS, 100.0); // overflow
        let snap = s.snapshot().unwrap();
        let h = snap.histogram("idle_drain_s").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[0], (0.1, 1));
        assert_eq!(*h.buckets.last().unwrap(), (-1.0, 1));
        assert!((h.min - 0.05).abs() < 1e-12);
        assert!((h.max - 100.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut s = JsonlSink::new();
        // 100 uniform observations over (0, 10]: quantile(q) ≈ 10q.
        for i in 1..=100 {
            s.observe(Hist::IdleDrainS, i as f64 / 10.0);
        }
        let snap = s.snapshot().unwrap();
        let h = snap.histogram("idle_drain_s").unwrap();
        // Bounds are [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0]; interpolation
        // within a bucket is linear, so estimates land within one bucket
        // width of the exact value.
        assert!((h.p50() - 5.0).abs() < 1.5);
        assert!((h.p95() - 9.5).abs() < 1.0);
        assert!((h.p99() - 9.9).abs() < 1.0);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        // Clamped to the observed range.
        assert!(h.quantile(0.0) >= h.min && h.quantile(1.0) <= h.max);
        // Empty histogram reports 0.
        let empty = snap.histogram("waterfill_per_decision").unwrap();
        assert_eq!(empty.p50(), 0.0);
        // Single observation: every quantile is that value.
        let mut one = JsonlSink::new();
        one.observe(Hist::IdleDrainS, 0.7);
        let snap1 = one.snapshot().unwrap();
        let h1 = snap1.histogram("idle_drain_s").unwrap();
        assert!((h1.p50() - 0.7).abs() < 1e-12);
        assert!((h1.p99() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn span_event_round_trips_and_orders() {
        let ev = TelemetryEvent::Span {
            t: 12.5,
            name: "round_decide".to_string(),
            start_s: 0.25,
            dur_s: 0.125,
            self_s: 0.1,
            depth: 2,
        };
        let line = serde_json::to_string(&ev).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
        assert_eq!(ev.kind(), "Span");
        assert_eq!(ev.time(), 12.5);
    }

    #[test]
    fn snapshot_round_trips_and_defaults() {
        let mut s = JsonlSink::new();
        s.emit(&round(1.5, 3));
        s.add(Counter::WaterfillIterations, 42);
        let snap = s.snapshot().unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("waterfill_iterations"), 42);
        assert_eq!(back.counter("no_such_counter"), 0);
    }

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }
}
