//! Counting global allocator (feature `count-allocs`).
//!
//! Benches install [`CountingAllocator`] as `#[global_allocator]` and
//! read [`allocations`] / [`bytes_allocated`] deltas around the region
//! of interest. This is the measurement baseline for the ROADMAP
//! "zero-alloc decision path" item: the `load_accounting` criterion
//! bench reports allocations per control round with it.
//!
//! Counts are process-global atomics; in multi-threaded benches the
//! deltas include every thread's allocations, so take them around
//! single-threaded regions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations and bytes.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations (including reallocs) since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn bytes_allocated() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
