//! Profiling spans: where does the wall-clock time go?
//!
//! The event/counter layer in the crate root records *what happened*;
//! this module records *where time went* without perturbing it:
//!
//! * [`Clock`] — the time source. [`MonoClock`] reads a monotonic wall
//!   clock; [`FakeClock`] advances a fixed tick per read so span trees
//!   are deterministic under test.
//! * [`SpanSink`] — a [`TelemetrySink`] that wraps a [`JsonlSink`] and
//!   additionally times `span_enter`/`span_exit` pairs. Span close
//!   events ride in the same ordered line stream as the inner sink's
//!   events (as [`TelemetryEvent::Span`] lines) but bypass its
//!   aggregation, so the embedded [`TelemetrySnapshot`] is identical
//!   to an unprofiled traced run.
//! * [`TimingSnapshot`] — per-span count / total / self time plus
//!   p50/p95/p99 interpolated from fixed log-spaced duration buckets.
//!
//! Instrumentation sites guard with `if S::SPANS { ... }`, the same
//! static-dispatch discipline as `S::ENABLED`: for [`NoopSink`] and
//! [`JsonlSink`] (`SPANS = false`) every span call compiles out, so
//! golden trace hashes and the zero-alloc decision path are untouched
//! when profiling is off.
//!
//! [`NoopSink`]: crate::NoopSink

use crate::{
    Counter, Hist, HistState, JsonlSink, SpanName, TelemetryEvent, TelemetrySink, TelemetrySnapshot,
};
use serde::{Deserialize, Serialize};

/// A time source for [`SpanSink`]. `now_s` takes `&mut self` so fake
/// clocks can advance on read; implementations must be monotone
/// non-decreasing.
pub trait Clock {
    /// Seconds elapsed on this clock (origin is arbitrary — spans only
    /// use differences).
    fn now_s(&mut self) -> f64;
}

/// Monotonic wall clock (the default).
#[derive(Debug, Clone)]
pub struct MonoClock {
    origin: std::time::Instant,
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Clock for MonoClock {
    fn now_s(&mut self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// Deterministic clock for tests: every read advances by a fixed tick,
/// so a given instrumentation path always produces the same span tree
/// (names, nesting, durations, self-times).
#[derive(Debug, Clone)]
pub struct FakeClock {
    now: f64,
    tick: f64,
}

impl FakeClock {
    /// Clock starting at 0 that advances `tick` seconds per read.
    pub fn new(tick: f64) -> Self {
        FakeClock { now: 0.0, tick }
    }
}

impl Clock for FakeClock {
    fn now_s(&mut self) -> f64 {
        let t = self.now;
        self.now += self.tick;
        t
    }
}

/// Bucket bounds for span durations (seconds), log-spaced from 100 ns
/// to 10 s. Shared by [`SpanSink`] and the `trace summarize` CLI so
/// percentiles agree.
pub const SPAN_DUR_BOUNDS: &[f64] = &[1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTiming {
    /// Span name ([`SpanName::name`]).
    pub name: String,
    /// Times the span closed.
    pub count: u64,
    /// Total wall seconds the span was open.
    pub total_s: f64,
    /// Wall seconds not attributed to child spans.
    pub self_s: f64,
    /// Median span duration (interpolated; see
    /// [`HistogramSnapshot::quantile`](crate::HistogramSnapshot::quantile)).
    pub p50_s: f64,
    /// 95th-percentile span duration.
    pub p95_s: f64,
    /// 99th-percentile span duration.
    pub p99_s: f64,
    /// Full duration histogram ([`SPAN_DUR_BOUNDS`] buckets).
    pub durations: crate::HistogramSnapshot,
}

/// Per-span wall-time profile of one run. Spans appear in
/// [`SpanName::ALL`] order; names that never closed are omitted.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingSnapshot {
    /// Wall seconds from sink construction to the snapshot call.
    pub wall_s: f64,
    /// Per-span timings (zero-count spans omitted).
    pub spans: Vec<SpanTiming>,
}

impl TimingSnapshot {
    /// Look up one span's timing by name.
    pub fn span(&self, name: &str) -> Option<&SpanTiming> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The `k` spans with the most self time, largest first (ties
    /// break by `ALL` order, so the result is deterministic).
    pub fn top_phases(&self, k: usize) -> Vec<(String, f64)> {
        let mut ranked: Vec<(String, f64)> = self
            .spans
            .iter()
            .map(|s| (s.name.clone(), s.self_s))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(k);
        ranked
    }
}

#[derive(Debug, Clone)]
struct SpanStat {
    count: u64,
    total_s: f64,
    self_s: f64,
    durations: HistState,
}

#[derive(Debug, Clone)]
struct Frame {
    name: usize,
    start_s: f64,
    child_s: f64,
}

/// A recording sink with profiling spans: wraps a [`JsonlSink`] (all
/// events/counters/histograms behave identically) and times
/// `span_enter`/`span_exit` pairs against a [`Clock`].
#[derive(Debug, Clone)]
pub struct SpanSink<C: Clock = MonoClock> {
    inner: JsonlSink,
    clock: C,
    origin_s: f64,
    /// Simulation time of the last emitted event — stamped onto Span
    /// lines so the combined trace stays monotone in `t`.
    last_t: f64,
    stack: Vec<Frame>,
    stats: Vec<SpanStat>,
}

impl SpanSink<MonoClock> {
    /// Profiling sink on the monotonic wall clock.
    pub fn new() -> Self {
        SpanSink::with_clock(MonoClock::default())
    }
}

impl Default for SpanSink<MonoClock> {
    fn default() -> Self {
        SpanSink::new()
    }
}

impl<C: Clock> SpanSink<C> {
    /// Profiling sink on an explicit clock (e.g. [`FakeClock`]).
    pub fn with_clock(mut clock: C) -> Self {
        let origin_s = clock.now_s();
        SpanSink {
            inner: JsonlSink::new(),
            clock,
            origin_s,
            last_t: 0.0,
            stack: Vec::new(),
            stats: SpanName::ALL
                .iter()
                .map(|_| SpanStat {
                    count: 0,
                    total_s: 0.0,
                    self_s: 0.0,
                    durations: HistState::with_bounds(SPAN_DUR_BOUNDS),
                })
                .collect(),
        }
    }

    /// The wrapped recording sink.
    pub fn inner(&self) -> &JsonlSink {
        &self.inner
    }

    /// Consume the sink, returning the combined trace lines (inner
    /// events interleaved with Span lines, in emission order).
    pub fn into_lines(self) -> Vec<String> {
        self.inner.into_lines()
    }

    /// Per-span timing profile so far. Reads the clock once for
    /// `wall_s`; open spans are not included until they close.
    pub fn timing(&mut self) -> TimingSnapshot {
        let wall_s = (self.clock.now_s() - self.origin_s).max(0.0);
        TimingSnapshot {
            wall_s,
            spans: SpanName::ALL
                .iter()
                .filter(|s| self.stats[s.index()].count > 0)
                .map(|&s| {
                    let st = &self.stats[s.index()];
                    let durations = st.durations.snapshot_named(s.name(), SPAN_DUR_BOUNDS);
                    SpanTiming {
                        name: s.name().to_string(),
                        count: st.count,
                        total_s: st.total_s,
                        self_s: st.self_s,
                        p50_s: durations.p50(),
                        p95_s: durations.p95(),
                        p99_s: durations.p99(),
                        durations,
                    }
                })
                .collect(),
        }
    }
}

impl<C: Clock> TelemetrySink for SpanSink<C> {
    const ENABLED: bool = true;
    const SPANS: bool = true;

    fn emit(&mut self, ev: &TelemetryEvent) {
        self.last_t = ev.time();
        self.inner.emit(ev);
    }

    fn add(&mut self, c: Counter, n: u64) {
        self.inner.add(c, n);
    }

    fn observe(&mut self, h: Hist, v: f64) {
        self.inner.observe(h, v);
    }

    fn span_enter(&mut self, name: SpanName) {
        let start_s = self.clock.now_s();
        self.stack.push(Frame {
            name: name.index(),
            start_s,
            child_s: 0.0,
        });
    }

    fn span_exit(&mut self, name: SpanName) {
        let now = self.clock.now_s();
        let Some(frame) = self.stack.pop() else {
            debug_assert!(false, "span_exit({name:?}) without matching span_enter");
            return;
        };
        debug_assert_eq!(
            frame.name,
            name.index(),
            "span_exit({name:?}) does not match the innermost open span"
        );
        let dur_s = (now - frame.start_s).max(0.0);
        let self_s = (dur_s - frame.child_s).max(0.0);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_s += dur_s;
        }
        let st = &mut self.stats[frame.name];
        st.count += 1;
        st.total_s += dur_s;
        st.self_s += self_s;
        st.durations.observe(SPAN_DUR_BOUNDS, dur_s);
        let ev = TelemetryEvent::Span {
            t: self.last_t,
            name: SpanName::ALL[frame.name].name().to_string(),
            start_s: frame.start_s - self.origin_s,
            dur_s,
            self_s,
            depth: self.stack.len() as u32,
        };
        // Pushed directly (not through `inner.emit`) so the inner
        // event count / settle / peak aggregation — and therefore the
        // embedded TelemetrySnapshot — match an unprofiled traced run.
        self.inner
            .lines
            .push(serde_json::to_string(&ev).expect("telemetry events always serialize"));
    }

    fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_produces_deterministic_nested_spans() {
        // Each clock read advances 1 ms. Sequence:
        //   enter(ScenarioRun)   read -> 1ms (origin consumed 0ms)
        //   enter(RoundDecide)   read -> 2ms
        //   exit(RoundDecide)    read -> 3ms   dur = 1ms, self = 1ms
        //   exit(ScenarioRun)    read -> 4ms   dur = 3ms, self = 2ms
        let mut s = SpanSink::with_clock(FakeClock::new(1e-3));
        s.span_enter(SpanName::ScenarioRun);
        s.span_enter(SpanName::RoundDecide);
        s.span_exit(SpanName::RoundDecide);
        s.span_exit(SpanName::ScenarioRun);
        let timing = s.timing();
        let decide = timing.span("round_decide").unwrap();
        assert_eq!(decide.count, 1);
        assert!((decide.total_s - 1e-3).abs() < 1e-12);
        assert!((decide.self_s - 1e-3).abs() < 1e-12);
        let run = timing.span("scenario_run").unwrap();
        assert_eq!(run.count, 1);
        assert!((run.total_s - 3e-3).abs() < 1e-12);
        assert!((run.self_s - 2e-3).abs() < 1e-12);
        // timing() is the 6th clock read (origin consumed the 1st):
        // wall = 5ms - 0ms.
        assert!((timing.wall_s - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn span_lines_ride_the_stream_without_touching_the_snapshot() {
        let mut s = SpanSink::with_clock(FakeClock::new(1.0));
        let ev = TelemetryEvent::ArcLoads {
            t: 2.0,
            max_util: 0.5,
            mean_util: 0.2,
            overloaded: 1,
        };
        s.span_enter(SpanName::EventDrain);
        s.emit(&ev);
        s.span_exit(SpanName::EventDrain);

        // A plain JsonlSink seeing the same events must produce the
        // identical snapshot (span lines bypass aggregation).
        let mut plain = JsonlSink::new();
        plain.emit(&ev);
        assert_eq!(s.snapshot(), plain.snapshot());

        let lines = s.into_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ArcLoads\":"));
        assert!(lines[1].starts_with("{\"Span\":"));
        // Span line parses back and carries the last sim time.
        let back: TelemetryEvent = serde_json::from_str(&lines[1]).unwrap();
        match back {
            TelemetryEvent::Span { t, name, depth, .. } => {
                assert_eq!(t, 2.0);
                assert_eq!(name, "event_drain");
                assert_eq!(depth, 0);
            }
            other => panic!("expected Span, got {other:?}"),
        }
    }

    #[test]
    fn top_phases_rank_by_self_time() {
        let mut s = SpanSink::with_clock(FakeClock::new(1.0));
        // RoundDecide open for 3 reads (3s), RoundApply for 1 read.
        s.span_enter(SpanName::RoundDecide);
        let _ = s.clock.now_s();
        let _ = s.clock.now_s();
        s.span_exit(SpanName::RoundDecide);
        s.span_enter(SpanName::RoundApply);
        s.span_exit(SpanName::RoundApply);
        let timing = s.timing();
        let top = timing.top_phases(2);
        assert_eq!(top[0].0, "round_decide");
        assert_eq!(top[1].0, "round_apply");
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn timing_snapshot_round_trips_through_json() {
        let mut s = SpanSink::with_clock(FakeClock::new(0.5));
        s.span_enter(SpanName::ResolveTopo);
        s.span_exit(SpanName::ResolveTopo);
        let timing = s.timing();
        let json = serde_json::to_string(&timing).unwrap();
        let back: TimingSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, timing);
    }

    #[test]
    fn span_names_are_unique_and_ordered() {
        let names: Vec<&str> = SpanName::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for (i, s) in SpanName::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
