//! # ecp-power — power models for routers, line cards, and links
//!
//! Implements the power-consumption model of §2.2.1 of the paper:
//!
//! > For each router `i`, `Pc(i)` is the cost in Watts for operating the
//! > chassis. The power cost for a line card is linearly proportional to
//! > the number of used ports. [...] `Pl(i→j)` is the cost in Watts for
//! > using a port on router `i` connected to `j`. Finally, the power cost
//! > of the optical link amplifier(s) is `Pa(i→j)` and depends solely on
//! > the link's length.
//!
//! Three concrete models match the paper's evaluation (§5.1):
//!
//! * [`PowerModel::cisco12000`] — "a typical configuration of a Cisco
//!   12000 series router with low to medium interface rates — each
//!   line-card (OC3, OC48, OC192) consumes between 60 and 174 W,
//!   depending on its operating speed, while the chassis consumes about
//!   600 W (around 60% of the router's power budget)"; amplifiers draw
//!   1.2 W per repeater span and are negligible.
//! * [`PowerModel::alternative_hw`] — the forward-looking model "in
//!   which the power budget for always-on components (chassis) is
//!   reduced by factor of 10".
//! * [`PowerModel::commodity_dc`] — the FatTree commodity-switch model
//!   "in which the fixed overheads due to fans, switch chips, and
//!   transceivers amount to about 90% of the peak power budget even if
//!   there is no traffic".
//!
//! A network element whose traffic is removed enters a low-power state
//! consuming a negligible amount of power (§5.1, citing Nedevschi et
//! al.); [`PowerModel::sleep_fraction`] models that residual draw
//! (default 0).

pub mod model;
pub mod network;
pub mod thermal;

pub use model::{LineCardClass, PowerModel};
pub use network::{power_fraction, proportionality_index, PowerBreakdown};
pub use thermal::ThermalModel;
