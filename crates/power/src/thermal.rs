//! Thermal headroom model (§4.5).
//!
//! "Instead of provisioning the power infrastructure for the peak hours,
//! REsPoNse allows network operators to provision their network for the
//! typical, low to medium level of traffic. Our trace analysis reveals
//! that the average peak duration is less than 2 hours long [...]
//! existing thermodynamic models like [38] can estimate how long the
//! peak utilization can be accommodated without extra cooling, while
//! keeping the temperature at desired levels."
//!
//! We provide the simplest such model: a lumped-capacitance (single-RC)
//! thermal node. Heat input is the IT power; cooling removes heat
//! proportionally to the temperature rise above ambient. Sized for the
//! *typical* power draw, the model answers the paper's question: how
//! long can a peak excursion run before the temperature limit?

use serde::{Deserialize, Serialize};

/// Lumped-capacitance thermal model of a PoP/row.
///
/// `C · dT/dt = P(t) − G · (T − T_ambient)` with thermal capacitance `C`
/// (J/°C) and cooling conductance `G` (W/°C).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Thermal capacitance in joules per °C (mass of equipment + air).
    pub heat_capacity_j_per_c: f64,
    /// Cooling conductance in watts per °C of rise above ambient.
    pub cooling_w_per_c: f64,
    /// Ambient (supply) temperature, °C.
    pub ambient_c: f64,
    /// Temperature limit, °C (inlet spec, e.g. 35 °C for chiller-less
    /// operation — the paper cites Microsoft's chiller-less datacenter).
    pub max_c: f64,
}

impl ThermalModel {
    /// Size the cooling so that `typical_power_w` settles exactly at
    /// `steady_margin` °C below the limit — "provision for the typical,
    /// low to medium level of traffic".
    pub fn provisioned_for(
        typical_power_w: f64,
        ambient_c: f64,
        max_c: f64,
        steady_margin: f64,
        heat_capacity_j_per_c: f64,
    ) -> Self {
        assert!(max_c > ambient_c + steady_margin);
        let steady_rise = (max_c - steady_margin) - ambient_c;
        ThermalModel {
            heat_capacity_j_per_c,
            cooling_w_per_c: typical_power_w / steady_rise,
            ambient_c,
            max_c,
        }
    }

    /// Steady-state temperature under constant power.
    pub fn steady_temp(&self, power_w: f64) -> f64 {
        self.ambient_c + power_w / self.cooling_w_per_c
    }

    /// Closed-form temperature after holding `power_w` for `dt` seconds
    /// starting from `t0_c`.
    pub fn temp_after(&self, t0_c: f64, power_w: f64, dt: f64) -> f64 {
        let t_inf = self.steady_temp(power_w);
        let tau = self.heat_capacity_j_per_c / self.cooling_w_per_c;
        t_inf + (t0_c - t_inf) * (-dt / tau).exp()
    }

    /// How long `power_w` can be sustained from `t0_c` before hitting
    /// the limit. `f64::INFINITY` when the steady state stays below it.
    pub fn time_to_limit(&self, t0_c: f64, power_w: f64) -> f64 {
        if t0_c >= self.max_c {
            return 0.0;
        }
        let t_inf = self.steady_temp(power_w);
        if t_inf <= self.max_c {
            return f64::INFINITY;
        }
        // Solve max = t_inf + (t0 - t_inf) e^{-t/tau}.
        let tau = self.heat_capacity_j_per_c / self.cooling_w_per_c;
        tau * ((t0_c - t_inf) / (self.max_c - t_inf)).ln()
    }

    /// Walk a `(seconds, watts)` power series; returns the peak
    /// temperature reached and whether the limit was ever exceeded.
    pub fn simulate(&self, start_c: f64, series: &[(f64, f64)]) -> (f64, bool) {
        let mut t = start_c;
        let mut peak = t;
        for &(dt, p) in series {
            t = self.temp_after(t, p, dt);
            peak = peak.max(t);
        }
        (peak, peak > self.max_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        // Typical 10 kW row settles 5 °C under a 35 °C limit, 25 °C
        // ambient; thermal time constant tau = C/G = 30 minutes.
        let m = ThermalModel::provisioned_for(10_000.0, 25.0, 35.0, 5.0, 1.0);
        ThermalModel {
            heat_capacity_j_per_c: m.cooling_w_per_c * 1800.0,
            ..m
        }
    }

    #[test]
    fn provisioning_hits_the_margin() {
        let m = model();
        assert!(
            (m.steady_temp(10_000.0) - 30.0).abs() < 1e-9,
            "typical settles at limit - margin"
        );
        assert!(m.steady_temp(5_000.0) < 30.0, "lighter load runs cooler");
    }

    #[test]
    fn typical_power_never_violates() {
        let m = model();
        let t = m.time_to_limit(30.0, 10_000.0);
        assert!(t.is_infinite());
        let (_peak, violated) = m.simulate(25.0, &[(86_400.0, 10_000.0)]);
        assert!(!violated);
    }

    #[test]
    fn finite_peak_budget_above_provisioning() {
        let m = model();
        // 2.4x power excursion: steady state would exceed the limit, but
        // thermal mass buys time.
        let budget = m.time_to_limit(30.0, 24_000.0);
        assert!(budget.is_finite() && budget > 0.0);
        // A peak shorter than the budget stays under the limit...
        let (_p, v) = m.simulate(30.0, &[(budget * 0.9, 24_000.0)]);
        assert!(!v, "peak shorter than budget is safe");
        // ...and a longer one does not.
        let (_p, v) = m.simulate(30.0, &[(budget * 1.2, 24_000.0)]);
        assert!(v, "overstaying the budget violates the limit");
    }

    #[test]
    fn temp_after_converges_to_steady() {
        let m = model();
        let t = m.temp_after(25.0, 12_000.0, 1e9);
        assert!((t - m.steady_temp(12_000.0)).abs() < 1e-6);
    }

    #[test]
    fn already_over_limit() {
        let m = model();
        assert_eq!(m.time_to_limit(40.0, 20_000.0), 0.0);
    }

    #[test]
    fn recovery_between_peaks() {
        let m = model();
        // Peak, recover at typical, peak again: diurnal pattern stays
        // safe even when one continuous double-length peak would not.
        let budget = m.time_to_limit(30.0, 24_000.0);
        let series = [
            (budget * 0.8, 24_000.0),
            (4.0 * 3600.0, 8_000.0),
            (budget * 0.8, 24_000.0),
        ];
        let (_p, v) = m.simulate(30.0, &series);
        assert!(!v, "recovery window resets the thermal budget");
    }
}
