//! Network-wide power evaluation — the objective function of the paper's
//! optimization:
//!
//! ```text
//! Σ_i X_i [ Pc(i) + Σ_{i→j ∈ A_i} Y(i→j) (Pl(i→j) + Pa(i→j)) ]
//! ```
//!
//! plus reporting helpers used by every figure (power as a percentage of
//! "original power", i.e. the all-on network).

use crate::model::PowerModel;
use ecp_topo::{ActiveSet, Topology};
use serde::{Deserialize, Serialize};

/// Itemized power draw of a network configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Watts drawn by powered chassis.
    pub chassis_w: f64,
    /// Watts drawn by active line-card ports.
    pub ports_w: f64,
    /// Watts drawn by amplifiers of active links.
    pub amplifiers_w: f64,
    /// Residual draw of sleeping elements (usually 0).
    pub sleeping_w: f64,
}

impl PowerBreakdown {
    /// Total Watts.
    pub fn total(&self) -> f64 {
        self.chassis_w + self.ports_w + self.amplifiers_w + self.sleeping_w
    }
}

impl PowerModel {
    /// Evaluate the paper's objective for an active subset: total network
    /// power in Watts.
    pub fn network_power(&self, topo: &Topology, active: &ActiveSet) -> f64 {
        self.network_breakdown(topo, active).total()
    }

    /// Itemized version of [`PowerModel::network_power`].
    pub fn network_breakdown(&self, topo: &Topology, active: &ActiveSet) -> PowerBreakdown {
        let mut b = PowerBreakdown {
            chassis_w: 0.0,
            ports_w: 0.0,
            amplifiers_w: 0.0,
            sleeping_w: 0.0,
        };
        for n in topo.node_ids() {
            let pc = self.chassis(topo, n);
            if active.node_on(n) {
                b.chassis_w += pc;
            } else {
                b.sleeping_w += pc * self.sleep_fraction;
            }
        }
        for a in topo.arc_ids() {
            // Port at the src endpoint of each directed arc; both
            // directions of a link therefore charge one port each, which
            // matches `Pl(i→j)` summed over `A_i` in the objective.
            let pl = self.port(topo, a);
            // Amplifiers belong to the physical link: charge on the
            // canonical direction only.
            let pa = if topo.link_of(a) == a {
                self.amplifier(topo, a)
            } else {
                0.0
            };
            if active.arc_on(topo, a) {
                b.ports_w += pl;
                b.amplifiers_w += pa;
            } else {
                b.sleeping_w += (pl + pa) * self.sleep_fraction;
            }
        }
        b
    }

    /// Power of the fully-on network ("original power" in the figures).
    pub fn full_power(&self, topo: &Topology) -> f64 {
        self.network_power(topo, &ActiveSet::all_on(topo))
    }
}

/// Power of `active` as a fraction (0–1) of the fully-on network, the
/// y-axis of Figs. 4, 5, 6 and 8a.
pub fn power_fraction(model: &PowerModel, topo: &Topology, active: &ActiveSet) -> f64 {
    let full = model.full_power(topo);
    if full <= 0.0 {
        return 1.0;
    }
    model.network_power(topo, active) / full
}

/// Energy-proportionality index over a run: 0 = perfectly flat power
/// regardless of load (not proportional), 1 = power tracks load exactly.
///
/// Defined as `1 - (idle_power / peak_power)` on the observed
/// (load, power) samples: we take power at the minimum-load sample as
/// "idle" and at the maximum-load sample as "peak".
pub fn proportionality_index(samples: &[(f64, f64)]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let (mut min_l, mut max_l) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut p_at_min, mut p_at_max) = (0.0, 0.0);
    for &(load, power) in samples {
        if load < min_l {
            min_l = load;
            p_at_min = power;
        }
        if load > max_l {
            max_l = load;
            p_at_max = power;
        }
    }
    if p_at_max <= 0.0 || max_l <= min_l {
        return 0.0;
    }
    (1.0 - p_at_min / p_at_max).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_topo::{NodeId, TopologyBuilder, MBPS, MS};

    fn two_link_topo() -> Topology {
        // 0 - 1 - 2, 100 Mbps links (OC3 ports: 60 W each side).
        let mut b = TopologyBuilder::new("t");
        let n: Vec<NodeId> = (0..3).map(|i| b.add_node(format!("{i}"))).collect();
        b.add_link(n[0], n[1], 100.0 * MBPS, MS);
        b.add_link(n[1], n[2], 100.0 * MBPS, MS);
        b.build()
    }

    #[test]
    fn full_power_matches_hand_computation() {
        let t = two_link_topo();
        let m = PowerModel::cisco12000();
        // 3 chassis * 600 + 4 ports * 60 (2 links, one port per arc).
        let expect = 3.0 * 600.0 + 4.0 * 60.0;
        assert!((m.full_power(&t) - expect).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = two_link_topo();
        let m = PowerModel::cisco12000();
        let s = ActiveSet::all_on(&t);
        let b = m.network_breakdown(&t, &s);
        assert!((b.total() - m.network_power(&t, &s)).abs() < 1e-9);
        assert_eq!(b.sleeping_w, 0.0);
    }

    #[test]
    fn sleeping_link_removes_its_ports() {
        let t = two_link_topo();
        let m = PowerModel::cisco12000();
        let mut s = ActiveSet::all_on(&t);
        let a = t.find_arc(NodeId(1), NodeId(2)).unwrap();
        s.set_link(&t, a, false);
        let b = m.network_breakdown(&t, &s);
        assert!(
            (b.ports_w - 2.0 * 60.0).abs() < 1e-9,
            "one link's two ports remain"
        );
        assert!((b.chassis_w - 3.0 * 600.0).abs() < 1e-9, "chassis still on");
        // After pruning node 2 (now isolated) the chassis drops too.
        s.prune_isolated_nodes(&t);
        let b2 = m.network_breakdown(&t, &s);
        assert!((b2.chassis_w - 2.0 * 600.0).abs() < 1e-9);
    }

    #[test]
    fn all_off_draws_zero_without_sleep_residual() {
        let t = two_link_topo();
        let m = PowerModel::cisco12000();
        assert_eq!(m.network_power(&t, &ActiveSet::all_off(&t)), 0.0);
    }

    #[test]
    fn sleep_fraction_accounted() {
        let t = two_link_topo();
        let mut m = PowerModel::cisco12000();
        m.sleep_fraction = 0.1;
        let off = m.network_power(&t, &ActiveSet::all_off(&t));
        assert!((off - 0.1 * m.full_power(&t)).abs() < 1e-6);
    }

    #[test]
    fn power_fraction_bounds() {
        let t = two_link_topo();
        let m = PowerModel::cisco12000();
        assert!((power_fraction(&m, &t, &ActiveSet::all_on(&t)) - 1.0).abs() < 1e-12);
        assert_eq!(power_fraction(&m, &t, &ActiveSet::all_off(&t)), 0.0);
    }

    #[test]
    fn commodity_dc_barely_proportional() {
        // With the commodity model, turning off all ports but keeping
        // chassis saves only ~10%.
        let t = two_link_topo();
        let m = PowerModel::commodity_dc();
        let mut s = ActiveSet::all_on(&t);
        for a in t.arc_ids() {
            s.set_link(&t, a, false);
        }
        // Do not prune chassis: mimic "idle but on".
        let frac = power_fraction(&m, &t, &s);
        assert!(frac > 0.88, "fixed overheads ~90%: {frac}");
    }

    #[test]
    fn proportionality_index_cases() {
        // Perfectly flat power.
        let flat = [(0.0, 100.0), (1.0, 100.0)];
        assert_eq!(proportionality_index(&flat), 0.0);
        // Perfectly proportional (zero at zero load).
        let prop = [(0.0, 0.0), (0.5, 50.0), (1.0, 100.0)];
        assert!((proportionality_index(&prop) - 1.0).abs() < 1e-12);
        // Halfway.
        let half = [(0.0, 50.0), (1.0, 100.0)];
        assert!((proportionality_index(&half) - 0.5).abs() < 1e-12);
        assert_eq!(proportionality_index(&[]), 0.0);
    }
}
