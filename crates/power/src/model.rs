//! The per-element power model: chassis, line-card port, amplifier.

use ecp_topo::{ArcId, NodeId, Topology, GBPS, MBPS};
use serde::{Deserialize, Serialize};

/// Line-card speed classes of the Cisco 12000 configuration the paper
/// uses (OC3 ≈ 155 Mbps, OC48 ≈ 2.5 Gbps, OC192 ≈ 10 Gbps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineCardClass {
    /// ≤ 622 Mbps ports (OC3/OC12 class): 60 W.
    Oc3,
    /// ≤ 2.5 Gbps ports (OC48 class): 100 W.
    Oc48,
    /// Faster ports (OC192 class): 174 W.
    Oc192,
}

impl LineCardClass {
    /// Classify a port by its arc capacity in bits/s.
    pub fn for_capacity(bps: f64) -> Self {
        if bps <= 622.0 * MBPS {
            LineCardClass::Oc3
        } else if bps <= 2.5 * GBPS {
            LineCardClass::Oc48
        } else {
            LineCardClass::Oc192
        }
    }

    /// Watts drawn by one active port of this class (Cisco-12000 figures
    /// quoted in the paper via GreenTE: 60–174 W).
    pub fn watts(self) -> f64 {
        match self {
            LineCardClass::Oc3 => 60.0,
            LineCardClass::Oc48 => 100.0,
            LineCardClass::Oc192 => 174.0,
        }
    }
}

/// A parameterized power model implementing the paper's `Pc`, `Pl`, `Pa`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// Model name for reports.
    pub name: String,
    /// Chassis power `Pc(i)` in Watts (uniform across routers; the
    /// paper's "simple model").
    pub chassis_w: f64,
    /// Scale applied to line-card port power (1.0 = Cisco figures).
    pub port_scale: f64,
    /// Amplifier Watts per repeater span `Pa`; spans every
    /// `amplifier_span_km` kilometres of link length.
    pub amplifier_w: f64,
    /// Kilometres between optical repeaters.
    pub amplifier_span_km: f64,
    /// Fraction of full element power still drawn while asleep
    /// (paper assumption: negligible → 0.0).
    pub sleep_fraction: f64,
    /// If set, ignore per-port classes and charge a flat fraction of the
    /// switch budget per active port — the commodity-DC model where fixed
    /// overheads dominate.
    pub flat_port_w: Option<f64>,
}

impl PowerModel {
    /// The paper's representative-hardware model: Cisco 12000 series.
    ///
    /// Chassis 600 W (~60% of a typical configuration's budget),
    /// line-cards 60–174 W by speed, optical repeaters every 80 km.
    ///
    /// The paper quotes 1.2 W per Teleste repeater and calls amplifier
    /// power negligible; we charge 5 W per span (repeater plus remote
    /// power-feed overhead). This stays negligible on continental links
    /// (≤ ~60 W), exactly as the paper assumes, while keeping the
    /// per-length term meaningful enough that a "minimal power tree"
    /// never transits a 5 500 km submarine link to save one 174 W port —
    /// a degenerate solution the paper's `Pa(i→j)` term exists to rule
    /// out.
    pub fn cisco12000() -> Self {
        PowerModel {
            name: "cisco12000".into(),
            chassis_w: 600.0,
            port_scale: 1.0,
            amplifier_w: 5.0,
            amplifier_span_km: 80.0,
            sleep_fraction: 0.0,
            flat_port_w: None,
        }
    }

    /// The "alternative hardware model in which the power budget for
    /// always-on components (chassis) is reduced by factor of 10" (§5.1).
    pub fn alternative_hw() -> Self {
        PowerModel {
            name: "alternative-hw".into(),
            chassis_w: 60.0,
            ..Self::cisco12000()
        }
    }

    /// Commodity datacenter switch model (§5.1): fixed overheads (fans,
    /// switch chips, transceivers) are ~90% of peak power. We size a
    /// 48-port-class switch at ~150 W peak: 135 W fixed ("chassis") and
    /// the remaining 10% split across ports.
    pub fn commodity_dc() -> Self {
        PowerModel {
            name: "commodity-dc".into(),
            chassis_w: 135.0,
            port_scale: 1.0,
            amplifier_w: 0.0,
            amplifier_span_km: 80.0,
            sleep_fraction: 0.0,
            // 10% of 150 W across ~24 active ports ≈ 0.625 W per port.
            flat_port_w: Some(0.625),
        }
    }

    /// Chassis power `Pc(i)`.
    pub fn chassis(&self, _topo: &Topology, _i: NodeId) -> f64 {
        self.chassis_w
    }

    /// Port power `Pl(i→j)` for the arc's capacity class.
    pub fn port(&self, topo: &Topology, a: ArcId) -> f64 {
        match self.flat_port_w {
            Some(w) => w,
            None => LineCardClass::for_capacity(topo.arc(a).capacity).watts() * self.port_scale,
        }
    }

    /// Amplifier power `Pa(i→j)`: one amplifier per started span.
    pub fn amplifier(&self, topo: &Topology, a: ArcId) -> f64 {
        let km = topo.arc(a).length_km;
        if km <= 0.0 || self.amplifier_w <= 0.0 {
            return 0.0;
        }
        let spans = (km / self.amplifier_span_km).ceil();
        spans * self.amplifier_w
    }

    /// Full power of one physical link: the two port costs (one per
    /// endpoint, per the paper's per-port line-card accounting) plus
    /// amplifiers. `a` may be either direction.
    pub fn link_full(&self, topo: &Topology, a: ArcId) -> f64 {
        let l = topo.link_of(a);
        let ports = match topo.reverse(l) {
            // Bidirectional link: a port at each endpoint. Port class from
            // each directed capacity (they can differ on asymmetric links).
            Some(r) => self.port(topo, l) + self.port(topo, r),
            None => self.port(topo, l),
        };
        ports + self.amplifier(topo, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_topo::{TopologyBuilder, MBPS, MS};

    #[test]
    fn line_card_classes() {
        assert_eq!(
            LineCardClass::for_capacity(100.0 * MBPS),
            LineCardClass::Oc3
        );
        assert_eq!(
            LineCardClass::for_capacity(622.0 * MBPS),
            LineCardClass::Oc3
        );
        assert_eq!(LineCardClass::for_capacity(2.5 * GBPS), LineCardClass::Oc48);
        assert_eq!(
            LineCardClass::for_capacity(10.0 * GBPS),
            LineCardClass::Oc192
        );
        assert_eq!(LineCardClass::Oc3.watts(), 60.0);
        assert_eq!(LineCardClass::Oc192.watts(), 174.0);
    }

    #[test]
    fn chassis_dominates_cisco_model() {
        let m = PowerModel::cisco12000();
        // 600 W chassis vs 60-174 W cards: chassis ~60% of budget for a
        // few-card configuration, as the paper states.
        let budget = m.chassis_w + 2.0 * 174.0;
        assert!(m.chassis_w / budget > 0.55 && m.chassis_w / budget < 0.70);
    }

    #[test]
    fn alternative_hw_is_tenth_chassis() {
        let a = PowerModel::alternative_hw();
        let c = PowerModel::cisco12000();
        assert!((a.chassis_w - c.chassis_w / 10.0).abs() < 1e-9);
        assert_eq!(a.port_scale, c.port_scale, "only chassis changes");
    }

    #[test]
    fn commodity_dc_fixed_fraction() {
        let m = PowerModel::commodity_dc();
        // For a switch with 24 active ports: fixed / total ≈ 0.9.
        let total = m.chassis_w + 24.0 * m.flat_port_w.unwrap();
        assert!((m.chassis_w / total - 0.9).abs() < 0.01);
    }

    #[test]
    fn amplifier_scales_with_length() {
        let mut b = TopologyBuilder::new("t");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, 100.0 * MBPS, MS);
        b.set_last_link_length(250.0); // 4 spans of 80 km (ceil)
        let t = b.build();
        let m = PowerModel::cisco12000();
        let a = t.find_arc(x, y).unwrap();
        assert!((m.amplifier(&t, a) - 4.0 * m.amplifier_w).abs() < 1e-9);
    }

    #[test]
    fn zero_length_has_no_amplifier() {
        let mut b = TopologyBuilder::new("t");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, 100.0 * MBPS, MS);
        let t = b.build();
        let m = PowerModel::cisco12000();
        assert_eq!(m.amplifier(&t, t.find_arc(x, y).unwrap()), 0.0);
    }

    #[test]
    fn link_full_counts_both_ports() {
        let mut b = TopologyBuilder::new("t");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, 100.0 * MBPS, MS);
        let t = b.build();
        let m = PowerModel::cisco12000();
        let a = t.find_arc(x, y).unwrap();
        assert!((m.link_full(&t, a) - 120.0).abs() < 1e-9, "two OC3 ports");
        // Same result queried from either direction.
        let r = t.reverse(a).unwrap();
        assert_eq!(m.link_full(&t, a), m.link_full(&t, r));
    }
}
