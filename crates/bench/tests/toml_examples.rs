//! The shipped TOML scenario documents must parse to exactly the
//! registry's builder-constructed scenarios (so the two never drift).

use ecp_scenario::Scenario;

#[test]
fn packet_latency_toml_matches_registry() {
    let doc = include_str!("../../../examples/extension_packet_latency.toml");
    let parsed = Scenario::from_toml(doc).expect("packet example parses");
    assert_eq!(
        parsed,
        ecp_bench::scenarios::extension_packet_latency(0.6, 4, false)
    );
}

#[test]
fn fig5_toml_matches_registry() {
    let doc = include_str!("../../../examples/fig5_geant_replay.toml");
    let parsed = Scenario::from_toml(doc).expect("fig5 example parses");
    assert_eq!(parsed, ecp_bench::scenarios::fig5(15, 150, 19, 1.15, 1));
}
