//! Golden-parity tests: the scenario-ported experiments must reproduce
//! the pre-port hand-wired pipelines sample for sample.
//!
//! Each test re-implements the seed binary's setup inline (scaled down
//! for test time) and compares against the registry scenario's report
//! with exact float equality — any drift in pair sampling, trace
//! synthesis, planning, or replay order fails the test.

use ecp_power::PowerModel;
use ecp_scenario::{run_scenario, AppDetail};
use ecp_topo::gen::{fat_tree, geant, FatTreeConfig};
use ecp_traffic::{
    fat_tree_far_pairs, fat_tree_near_pairs, geant_like_trace, random_od_pairs_subset, sine_series,
    uniform_matrix, Trace,
};
use respons_core::{steady_state_replay, OnDemandStrategy, Planner, PlannerConfig, TeConfig};

fn series_of(report: &ecp_scenario::ScenarioReport) -> Vec<f64> {
    report
        .power_series
        .as_deref()
        .expect("power series selected")
        .iter()
        .map(|&(_, f)| f)
        .collect()
}

/// Fig. 4 — the seed pipeline: demand-aware tables (5 paths, peak
/// matrix) replayed over a per-flow sine, plus the ECMP and optimal
/// baselines.
#[test]
fn fig4_scenario_matches_seed_pipeline() {
    let steps = 6;
    let k = 4;
    let (topo, ix) = fat_tree(&FatTreeConfig {
        k,
        ..Default::default()
    });
    let pm = PowerModel::commodity_dc();
    let te = TeConfig::default();
    let demand = sine_series(steps, steps, 0.02e9, 0.9e9);

    for (far, pairs) in [
        (false, fat_tree_near_pairs(&ix)),
        (true, fat_tree_far_pairs(&ix)),
    ] {
        let cfg = PlannerConfig {
            num_paths: 5,
            strategy: OnDemandStrategy::PeakMatrix(uniform_matrix(&pairs, 0.9e9)),
            ..Default::default()
        };
        let tables = Planner::new(&topo, &pm).plan_pairs(&cfg, &pairs);
        let trace = Trace {
            name: "seed".into(),
            interval_s: 1.0,
            matrices: demand.iter().map(|&v| uniform_matrix(&pairs, v)).collect(),
        };
        let seed_series: Vec<f64> = steady_state_replay(&topo, &pm, &tables, &trace, &te)
            .points
            .iter()
            .map(|p| p.power_frac)
            .collect();

        let report = run_scenario(&ecp_bench::scenarios::fig4(steps, k, far)).unwrap();
        assert_eq!(series_of(&report), seed_series, "far={far}");

        if far {
            // Baselines: ECMP keeps the whole fabric on; optimal bounds
            // the peak configuration.
            let detail = report.replay.as_ref().unwrap();
            let ecmp = ecp_routing::ecmp_routes(&topo, &pairs, 16);
            let ecmp_frac = ecp_power::power_fraction(&pm, &topo, &ecmp.active_set(&topo));
            let oc = ecp_routing::OracleConfig::default();
            let opt = ecp_routing::optimal_subset(&topo, &pm, &uniform_matrix(&pairs, 0.9e9), &oc)
                .map(|r| r.power_w / pm.full_power(&topo))
                .unwrap();
            let find = |name: &str| {
                detail
                    .comparisons
                    .iter()
                    .find(|c| c.name == name)
                    .unwrap()
                    .series
                    .clone()
            };
            assert_eq!(find("ecmp"), vec![ecmp_frac]);
            assert_eq!(find("optimal_at_peak"), vec![opt]);
        }
    }
}

/// Fig. 5 — the seed pipeline: always-on-scaled (capped) GÉANT-like
/// trace replayed over planned tables, plus the alternative-hardware
/// replay of the *same* trace.
#[test]
fn fig5_scenario_matches_seed_pipeline() {
    let (days, pairs_n, nodes_n, seed) = (1usize, 30usize, 10usize, 1u64);
    let topo = geant();
    let pm = PowerModel::cisco12000();
    let te = TeConfig::default();
    let pairs = random_od_pairs_subset(&topo, nodes_n, pairs_n, seed);
    let tables = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
    let base = ecp_traffic::gravity_matrix(&topo, &pairs, 1e9);
    let aon = respons_core::replay::max_supported_scale(&topo, &tables, &base, &te, 1);
    let all = respons_core::replay::max_supported_scale(&topo, &tables, &base, &te, 3);
    let peak = (1e9 * aon * 1.15).min(1e9 * all * 0.95);
    let trace = geant_like_trace(&topo, &pairs, days, peak, seed);
    let rep = steady_state_replay(&topo, &pm, &tables, &trace, &te);

    let pm_alt = PowerModel::alternative_hw();
    let tables_alt = Planner::new(&topo, &pm_alt).plan_pairs(&PlannerConfig::default(), &pairs);
    let rep_alt = steady_state_replay(&topo, &pm_alt, &tables_alt, &trace, &te);

    let report = run_scenario(&ecp_bench::scenarios::fig5(
        days, pairs_n, nodes_n, 1.15, seed,
    ))
    .unwrap();
    let resolved_peak = report.replay.as_ref().unwrap().trace_peak_bps.unwrap();
    assert_eq!(resolved_peak, peak, "trace peak resolves identically");
    let seed_series: Vec<f64> = rep.points.iter().map(|p| p.power_frac).collect();
    assert_eq!(series_of(&report), seed_series);
    assert_eq!(report.mean_power_frac, rep.mean_power_fraction());
    assert_eq!(report.congested_fraction.unwrap(), rep.congested_fraction());

    let report_alt = run_scenario(&ecp_bench::scenarios::fig5_alt_hw(
        days,
        pairs_n,
        nodes_n,
        resolved_peak,
        seed,
    ))
    .unwrap();
    let alt_series: Vec<f64> = rep_alt.points.iter().map(|p| p.power_frac).collect();
    assert_eq!(series_of(&report_alt), alt_series);
}

/// Fig. 7 — the seed pipeline: the hand-wired Click-testbed adaptation
/// run (paper tables, spread pre-TE shares, TE start at t = 5 s, middle
/// link failing at t = 5.7 s). The scenario engine must reproduce the
/// recorder series **sample for sample, including the t = 0 sample**:
/// historically the engine was documented as differing from the seed in
/// that first sample, so this test both pins parity and states the
/// resolved behavior — the series starts from the true initial state
/// (shares spread 50/50, both candidate paths awake and delivering)
/// *before* any control round has run.
#[test]
fn fig7_scenario_matches_seed_pipeline_including_t0() {
    use ecp_simnet::{SimConfig, Simulation};
    use ecp_topo::gen::fig3_click;
    use ecp_topo::Path;
    use respons_core::tables::OdPaths;
    use respons_core::PathTables;

    let duration = 8.0;
    let (topo, n) = fig3_click();
    let pm = PowerModel::cisco12000();
    let mut tables = PathTables::new();
    tables.insert(
        n.a,
        n.k,
        OdPaths {
            always_on: Path::new(vec![n.a, n.e, n.h, n.k]),
            on_demand: vec![Path::new(vec![n.a, n.d, n.g, n.k])],
            failover: Path::new(vec![n.a, n.d, n.g, n.k]),
        },
    );
    tables.insert(
        n.c,
        n.k,
        OdPaths {
            always_on: Path::new(vec![n.c, n.e, n.h, n.k]),
            on_demand: vec![Path::new(vec![n.c, n.f, n.j, n.k])],
            failover: Path::new(vec![n.c, n.f, n.j, n.k]),
        },
    );
    let cfg = SimConfig {
        te: TeConfig::default(),
        control_interval: 0.1,
        wake_time: 0.01,
        detect_delay: 0.1,
        sleep_after: 0.2,
        sample_interval: 0.05,
        te_start: 5.0,
    };
    let mut sim = Simulation::new(&topo, &pm, &tables, cfg);
    let fa = sim.add_flow(&tables, n.a, n.k, 2.5e6);
    let fc = sim.add_flow(&tables, n.c, n.k, 2.5e6);
    sim.set_shares(fa, vec![0.5, 0.5]);
    sim.set_shares(fc, vec![0.5, 0.5]);
    let eh = topo.find_arc(n.e, n.h).unwrap();
    sim.schedule_link_failure(5.7, eh);
    sim.run_until(duration);
    let seed_samples = sim.recorder().samples().to_vec();

    let report = run_scenario(&ecp_bench::scenarios::fig7(duration)).unwrap();
    let engine_samples = report.per_path_samples.as_deref().unwrap();
    assert_eq!(engine_samples, &seed_samples[..], "bit-identical series");

    // The t = 0 sample is the true pre-TE initial state: both flows
    // spread 50/50, every candidate path delivering its half.
    let first = &engine_samples[0];
    assert_eq!(first.t, 0.0);
    assert_eq!(
        first.per_flow_path_rates,
        vec![vec![1.25e6, 1.25e6], vec![1.25e6, 1.25e6]],
        "series starts from the spread initial state, not a post-round one"
    );
    assert_eq!(first.offered_total, 5e6);
    assert_eq!(first.delivered_total, 5e6);
}

/// Fig. 9 — the seed pipeline: seeded client waves streaming over
/// REsPoNse-lat and OSPF-InvCap tables on Abovenet.
#[test]
fn fig9_scenario_matches_seed_pipeline() {
    use ecp_apps::{run_streaming, tables_from_routes, StreamingConfig};
    use ecp_simnet::SimConfig;
    use ecp_topo::gen::abovenet;
    use ecp_topo::NodeId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let (clients_n, duration, runs) = (5usize, 30.0, 2usize);
    let topo = abovenet();
    let pm = PowerModel::cisco12000();
    let server = NodeId(0);
    let others: Vec<NodeId> = topo.node_ids().filter(|&n| n != server).collect();
    let pairs: Vec<(NodeId, NodeId)> = others.iter().map(|&n| (server, n)).collect();
    let planner = Planner::new(&topo, &pm);
    let t_rep = planner.plan_pairs(
        &PlannerConfig {
            beta: Some(0.25),
            ..Default::default()
        },
        &pairs,
    );
    let t_inv = tables_from_routes(&ecp_routing::ospf_invcap(&topo, &pairs, None));
    let sim_cfg = SimConfig {
        te: TeConfig::default(),
        control_interval: 0.2,
        wake_time: 0.1,
        detect_delay: 0.2,
        sleep_after: 1.0,
        sample_interval: 0.5,
        te_start: 0.0,
    };
    let stream_cfg = StreamingConfig {
        duration,
        ..Default::default()
    };

    for (invcap, tables) in [(false, &t_rep), (true, &t_inv)] {
        let report = run_scenario(&ecp_bench::scenarios::fig9(
            clients_n, duration, runs, invcap,
        ))
        .unwrap();
        let got = match report.app.unwrap() {
            AppDetail::Streaming { runs } => runs,
            _ => panic!("streaming report expected"),
        };
        assert_eq!(got.len(), runs);
        for (r, stats) in got.iter().enumerate() {
            // The seed binary's placement: waves at t=0 and duration/2,
            // rng seeded with `run + 7`.
            let mut rng = StdRng::seed_from_u64(r as u64 + 7);
            let mut placement: Vec<(NodeId, f64)> = (0..clients_n)
                .map(|_| (others[rng.gen_range(0..others.len())], 0.0))
                .collect();
            placement.extend(
                (0..clients_n).map(|_| (others[rng.gen_range(0..others.len())], duration / 2.0)),
            );
            let res = run_streaming(
                &topo,
                &pm,
                tables,
                server,
                &placement,
                &stream_cfg,
                &sim_cfg,
            );
            assert_eq!(
                stats.wave_playable_pct[0],
                res.playable_percent_where(|c| c.joined_at == 0.0),
                "run {r} invcap={invcap}"
            );
            assert_eq!(stats.playable_pct, res.playable_percent());
            assert_eq!(stats.mean_block_latency_s, res.mean_block_latency());
            assert_eq!(stats.mean_power_fraction, res.mean_power_fraction);
        }
    }
}
