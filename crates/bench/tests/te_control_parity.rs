//! Golden parity for the TE control-loop refactor (PR 4).
//!
//! The `Undamped` control policy must be **bit-identical** to the
//! pre-refactor TE path (`respons_core::te::decide_shares` hard-wired
//! into the simulator's control round). The golden file
//! `tests/golden/te_undamped.json` was generated against the
//! pre-refactor engine; every Simnet-engine scenario of the campaign
//! registry is replayed and its report projection hashed against it.
//!
//! Regenerate (only when adding scenarios, never to paper over drift):
//!
//! ```text
//! ECP_WRITE_TE_GOLDENS=1 cargo test -p ecp-bench --test te_control_parity
//! ```

use ecp_scenario::{ControlSpec, EngineSpec, Param, Scenario};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The report fields the pre-refactor engine produced for simnet runs —
/// a projection so later additions to `ScenarioReport` (new optional
/// blocks) do not invalidate the goldens.
#[derive(Serialize)]
struct ReportProjection {
    name: String,
    seed: u64,
    engine: String,
    samples: usize,
    mean_power_frac: f64,
    mean_delivered_fraction: f64,
    max_tracking_lag_s: f64,
    power_series: Option<Vec<(f64, f64)>>,
    delivered_series: Option<Vec<(f64, f64, f64)>>,
    per_path_samples: Option<Vec<ecp_simnet::Sample>>,
}

/// 128-bit content hash of a report projection
/// ([`ecp_campaign::content_hash`], the run-store construction).
fn report_hash(report: &ecp_scenario::ScenarioReport) -> String {
    let proj = ReportProjection {
        name: report.name.clone(),
        seed: report.seed,
        engine: report.engine.clone(),
        samples: report.samples,
        mean_power_frac: report.mean_power_frac,
        mean_delivered_fraction: report.mean_delivered_fraction,
        max_tracking_lag_s: report.max_tracking_lag_s,
        power_series: report.power_series.clone(),
        delivered_series: report.delivered_series.clone(),
        per_path_samples: report.per_path_samples.clone(),
    };
    let json = serde_json::to_string(&proj).expect("projection serializes");
    ecp_campaign::content_hash(json.as_bytes())
}

#[derive(Serialize, Deserialize)]
struct GoldenFile {
    /// Registry id -> report-projection hash, sorted by id.
    hashes: BTreeMap<String, String>,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("te_undamped.json")
}

/// The Simnet registry scenarios that actually run the `Undamped`
/// policy. Damped `te-stability-*` scenarios are deliberately
/// excluded: their hashes change whenever a damping default is tuned,
/// which is not drift from the pre-refactor engine.
fn simnet_registry() -> Vec<(&'static str, Scenario)> {
    ecp_bench::scenarios::campaign_registry()
        .into_iter()
        .filter(|(_, s)| {
            matches!(s.engine, EngineSpec::Simnet) && s.control == ControlSpec::Undamped
        })
        .collect()
}

/// Every `Undamped` Simnet registry scenario must hash to the value
/// the pre-refactor engine produced.
#[test]
fn undamped_is_bit_identical_to_pre_refactor_te() {
    let scenarios = simnet_registry();
    let mut hashes = BTreeMap::new();
    for (id, scenario) in &scenarios {
        let report = ecp_scenario::run_scenario(scenario).expect("registry scenario runs");
        hashes.insert(id.to_string(), report_hash(&report));
    }

    if std::env::var_os("ECP_WRITE_TE_GOLDENS").is_some() {
        let body = serde_json::to_string_pretty(&GoldenFile { hashes }).expect("golden serializes");
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), body).unwrap();
        return;
    }

    let doc = std::fs::read_to_string(golden_path()).expect(
        "golden file missing; generate with ECP_WRITE_TE_GOLDENS=1 (pre-refactor engine only)",
    );
    let golden: GoldenFile = serde_json::from_str(&doc).expect("golden parses");
    // Exact key-set equality both ways, so a renamed or removed
    // registry id cannot silently drop its parity pin, and a new
    // Undamped simnet scenario must be added to the goldens
    // deliberately (regeneration keeps existing hashes bit-identical —
    // this very test proves it before you regenerate).
    for id in golden.hashes.keys() {
        assert!(
            scenarios.iter().any(|(sid, _)| sid == id),
            "golden id `{id}` is no longer in the registry — renamed without regenerating?"
        );
    }
    for (id, _) in &scenarios {
        let want = golden.hashes.get(*id).unwrap_or_else(|| {
            panic!(
                "registry scenario `{id}` has no golden entry; add it with \
                 ECP_WRITE_TE_GOLDENS=1 after confirming this test passes"
            )
        });
        assert_eq!(
            hashes.get(*id),
            Some(want),
            "scenario `{id}`: Undamped TE drifted from the pre-refactor engine"
        );
    }
}

/// Damping must not regress the Fig. 7 adaptation behavior (§5.3): for
/// every damped policy, consolidation still completes within a few
/// control rounds of the TE start at t = 5 s, and failover still
/// restores delivery within detection + wake + a few rounds of the
/// t = 5.7 s failure.
#[test]
fn fig7_adaptation_latency_does_not_regress_under_damping() {
    for (_, control) in ecp_bench::scenarios::te_stability_policies() {
        let label = control.label();
        let mut scenario = ecp_bench::scenarios::fig7(8.0);
        scenario.control = control;
        let report = ecp_scenario::run_scenario(&scenario).unwrap();
        let samples = report.per_path_samples.as_deref().unwrap();
        let series: Vec<(f64, f64, f64)> = samples
            .iter()
            .map(|s| {
                let middle = s.per_flow_path_rates[0][0] + s.per_flow_path_rates[1][0];
                let spread = s.per_flow_path_rates[0][1] + s.per_flow_path_rates[1][1];
                (s.t, middle, spread)
            })
            .collect();
        let consolidated = series
            .iter()
            .find(|&&(t, m, u)| t >= 5.0 && m > 4.5e6 && u < 0.2e6)
            .map(|&(t, ..)| t)
            .unwrap_or_else(|| panic!("{label}: never consolidated"));
        assert!(
            consolidated <= 6.0,
            "{label}: consolidation within 1 s of TE start (paper: ~200 ms), got t={consolidated}"
        );
        let restored = series
            .iter()
            .find(|&&(t, _, u)| t > 5.7 && u > 4.5e6)
            .map(|&(t, ..)| t)
            .unwrap_or_else(|| panic!("{label}: never restored after failure"));
        assert!(
            restored <= 6.7,
            "{label}: failover restored within 1 s of the failure, got t={restored}"
        );
    }
}

// The degenerate damping parameterizations (`Ewma` with `alpha = 1`,
// `DampedStep` with no damping and no cooldown) route through the
// policy plumbing but must reproduce the `Undamped` decision exactly —
// byte-identical `ScenarioReport`s across the registry's simnet
// scenarios under randomized seed and load perturbations.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn undamped_equivalents_are_byte_identical_across_registry(
        which in 0usize..4,
        seed in 1u64..500,
        load in 0.6f64..1.3,
    ) {
        // Rolling-maintenance is excluded only for test runtime; the
        // fixed-seed golden test above still covers it.
        let ids = [
            "fig7-click-adaptation",
            "fig8a-pop-access",
            "fig8b-fat-tree",
            "scenario-cascade-flashcrowd",
        ];
        let mut base = ecp_bench::scenarios::campaign_scenario(ids[which]).unwrap();
        Param::Seed.apply(&mut base, seed as f64);
        Param::LoadScale.apply(&mut base, load);

        let reference = serde_json::to_string(
            &ecp_scenario::run_scenario(&base).unwrap()
        ).unwrap();
        for control in [
            ControlSpec::Ewma { alpha: 1.0 },
            ControlSpec::DampedStep { damp: 0.0, cooldown_rounds: 0 },
        ] {
            let mut damped = base.clone();
            damped.control = control;
            let got = serde_json::to_string(
                &ecp_scenario::run_scenario(&damped).unwrap()
            ).unwrap();
            prop_assert_eq!(&got, &reference, "{} on {}", control.label(), ids[which]);
        }
    }
}
