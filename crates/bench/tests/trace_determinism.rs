//! Telemetry-trace determinism (ISSUE 6).
//!
//! A trace is a pure function of the scenario: re-running, changing the
//! rayon thread count, or re-sharding a campaign must all produce
//! byte-identical JSONL, and a traced run must leave the report
//! byte-identical to an untraced one (the no-op sink is the default;
//! golden hashes are pinned on it). One small registry scenario is
//! additionally pinned against a full golden trace file.
//!
//! Regenerate the golden (only when the event schema deliberately
//! changes):
//!
//! ```text
//! ECP_WRITE_TE_GOLDENS=1 cargo test -p ecp-bench --test trace_determinism
//! ```

use ecp_campaign::{exec, CampaignSpec, EntrySpec, ResultStore};
use ecp_scenario::Param;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace_fig7.jsonl")
}

/// The Fig. 7 Click-adaptation trace, event for event. Pins the event
/// schema itself (names, field sets, float rendering), not just
/// self-consistency: any serialization change must regenerate this
/// file deliberately.
#[test]
fn fig7_trace_matches_golden() {
    let scenario = ecp_bench::scenarios::campaign_scenario("fig7-click-adaptation").unwrap();
    let (_, trace) = ecp_scenario::run_scenario_traced(&scenario).unwrap();
    let body = trace.to_jsonl();
    assert!(!trace.lines.is_empty(), "fig7 must trace events");

    if std::env::var_os("ECP_WRITE_TE_GOLDENS").is_some() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), &body).unwrap();
        return;
    }
    let want = std::fs::read_to_string(golden_path())
        .expect("golden trace missing; generate with ECP_WRITE_TE_GOLDENS=1");
    assert_eq!(
        body, want,
        "fig7 trace drifted from the golden event stream"
    );
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "ecp-trace-test-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every file in a store subdirectory, name → bytes.
fn dir_files(dir: &Path, sub: &str) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir.join(sub)).expect("store dir exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Re-running a traced scenario reproduces the identical trace and
    /// snapshot, and tracing leaves the report byte-identical to the
    /// untraced run (with `metrics.telemetry` unset).
    #[test]
    fn traced_runs_are_deterministic_and_report_invariant(
        which in 0usize..3,
        seed in 1u64..500,
        load in 0.6f64..1.2,
    ) {
        let ids = [
            "fig7-click-adaptation",
            "fig8a-pop-access",
            "te-stability-damped-step",
        ];
        let mut scenario = ecp_bench::scenarios::campaign_scenario(ids[which]).unwrap();
        Param::Seed.apply(&mut scenario, seed as f64);
        Param::LoadScale.apply(&mut scenario, load);

        let (report_a, trace_a) = ecp_scenario::run_scenario_traced(&scenario).unwrap();
        let (report_b, trace_b) = ecp_scenario::run_scenario_traced(&scenario).unwrap();
        prop_assert_eq!(&trace_a.lines, &trace_b.lines, "{}: trace not deterministic", ids[which]);
        prop_assert_eq!(&trace_a.snapshot, &trace_b.snapshot);
        prop_assert!(!trace_a.lines.is_empty());

        let untraced = serde_json::to_string(&ecp_scenario::run_scenario(&scenario).unwrap()).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&report_a).unwrap(),
            untraced,
            "{}: tracing perturbed the report", ids[which]
        );
        prop_assert_eq!(serde_json::to_string(&report_a).unwrap(), serde_json::to_string(&report_b).unwrap());
    }

    /// The campaign executor's stored trace artifacts are invariant
    /// under the rayon worker-thread count.
    #[test]
    fn campaign_traces_are_thread_count_invariant(
        seed in 1u64..200,
        threads in 2usize..5,
    ) {
        let spec = CampaignSpec::new("trace-threads")
            .entry(
                EntrySpec::registry("fig7", "fig7-click-adaptation")
                    .with_seeds([seed, seed + 1]),
            )
            .entry(EntrySpec::registry("stability", "te-stability-damped-step"));
        let resolver = |id: &str| ecp_bench::scenarios::campaign_scenario(id);

        let dir_1 = fresh_dir("t1");
        let store_1 = ResultStore::open(&dir_1).unwrap();
        let opts_1 = exec::ExecOptions { threads: Some(1), ..Default::default() };
        let stats_1 = exec::run_campaign(&spec, &resolver, &store_1, 1, &opts_1).unwrap();
        prop_assert_eq!(stats_1.failed, 0);

        let dir_n = fresh_dir("tn");
        let store_n = ResultStore::open(&dir_n).unwrap();
        let opts_n = exec::ExecOptions { threads: Some(threads), ..Default::default() };
        exec::run_campaign(&spec, &resolver, &store_n, 1, &opts_n).unwrap();

        prop_assert_eq!(
            dir_files(&dir_1, "traces"),
            dir_files(&dir_n, "traces"),
            "trace artifacts depend on the thread count"
        );
        prop_assert_eq!(dir_files(&dir_1, "runs"), dir_files(&dir_n, "runs"));
        prop_assert!(!dir_files(&dir_1, "traces").is_empty(), "simnet runs must leave traces");

        for d in [dir_1, dir_n] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}
