//! Phase-level span profiles for the te-stability registry family.
//!
//! Every policy arm must produce a complete control-loop profile
//! (event drain plus the observe/decide/apply/install round phases),
//! and on a `FakeClock` the whole profile — span tree, counts,
//! durations — must be deterministic run to run. This is the
//! observability contract the BENCH trajectory's phase breakdowns and
//! the chrome trace converter build on.

use ecp_scenario::{run::run_scenario_profiled_with_clock, FakeClock};

/// Shortened te-stability shape: same topology/coupling regime as the
/// golden-pinned family, cut to 10 s so six profiled arms stay fast.
fn family_scenario(control: ecp_scenario::ControlSpec) -> ecp_scenario::Scenario {
    ecp_bench::scenarios::te_stability(10.0, 0.7, control)
}

#[test]
fn every_policy_arm_profiles_all_control_phases() {
    for (id, control) in ecp_bench::scenarios::te_stability_policies() {
        let scenario = family_scenario(control);
        let (_, trace, timing) = run_scenario_profiled_with_clock(&scenario, FakeClock::new(1e-6))
            .unwrap_or_else(|e| panic!("{id}: profiled run failed: {e}"));
        for phase in [
            "event_drain",
            "round_observe",
            "round_decide",
            "round_apply",
            "round_install",
            "resolve_topo",
            "resolve_plan",
            "scenario_run",
        ] {
            let span = timing.span(phase);
            assert!(
                span.is_some_and(|s| s.count > 0),
                "{id}: phase `{phase}` missing from the profile"
            );
        }
        // Span lines actually ride the trace (the chrome converter's
        // input), and every percentile is well-formed.
        assert!(
            trace.lines.iter().any(|l| l.starts_with("{\"Span\"")),
            "{id}: no Span lines in the profiled trace"
        );
        for s in &timing.spans {
            assert!(
                s.p50_s <= s.p95_s && s.p95_s <= s.p99_s,
                "{id}/{}: percentiles out of order ({} / {} / {})",
                s.name,
                s.p50_s,
                s.p95_s,
                s.p99_s
            );
            assert!(
                s.self_s <= s.total_s + 1e-12,
                "{id}/{}: self time exceeds total",
                s.name
            );
        }
    }
}

#[test]
fn fake_clock_profiles_are_deterministic_per_arm() {
    for (id, control) in ecp_bench::scenarios::te_stability_policies() {
        let scenario = family_scenario(control);
        let (ra, ta, tma) =
            run_scenario_profiled_with_clock(&scenario, FakeClock::new(1e-6)).unwrap();
        let (rb, tb, tmb) =
            run_scenario_profiled_with_clock(&scenario, FakeClock::new(1e-6)).unwrap();
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&rb).unwrap(),
            "{id}: reports diverged"
        );
        assert_eq!(ta.lines, tb.lines, "{id}: span-bearing traces diverged");
        assert_eq!(
            serde_json::to_string(&tma).unwrap(),
            serde_json::to_string(&tmb).unwrap(),
            "{id}: timing snapshots diverged"
        );
    }
}
