//! Ablation — TE activation threshold / safety margin (§4.4–4.5).
//!
//! Paper: "REsPoNseTE allows the ISPs to set a link utilization
//! threshold, which [...] prevents the performance penalties and
//! congestion by activating the on-demand paths sooner"; the safety
//! margin `sm` trades power savings against reserved headroom.
//!
//! We sweep the threshold and report mean power and congestion over the
//! GÉANT-like replay.
//!
//! Usage: `--pairs 120 --days 3 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::OracleConfig;
use ecp_topo::gen::geant;
use ecp_traffic::{geant_like_trace, random_od_pairs};
use respons_core::{steady_state_replay, Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold: f64,
    mean_power_frac: f64,
    congested_fraction: f64,
    mean_spilled_demands: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let days: usize = arg("days", 3);
    let seed: u64 = arg("seed", 1);

    let topo = geant();
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let _oc = OracleConfig::default();

    eprintln!("planning once...");
    let tables = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);

    // Scale the trace to the installed tables (like Fig. 5): peak just
    // above the always-on capacity so the threshold choice matters.
    let base = ecp_traffic::gravity_matrix(&topo, &pairs, 1e9);
    let te_full = TeConfig { threshold: 1.0, ..Default::default() };
    let aon = respons_core::replay::max_supported_scale(&topo, &tables, &base, &te_full, 1);
    let peak = 1e9 * aon * 1.15;
    let trace = geant_like_trace(&topo, &pairs, days, peak, seed);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for thr in [0.5, 0.7, 0.9, 0.95, 1.0] {
        eprintln!("replaying at threshold {thr}...");
        let te = TeConfig { threshold: thr, ..Default::default() };
        let rep = steady_state_replay(&topo, &pm, &tables, &trace, &te);
        let spilled = rep.points.iter().map(|p| p.spilled_demands as f64).sum::<f64>()
            / rep.points.len().max(1) as f64;
        rows.push(vec![
            format!("{:.0}%", 100.0 * thr),
            format!("{:.1}%", 100.0 * rep.mean_power_fraction()),
            format!("{:.2}%", 100.0 * rep.congested_fraction()),
            format!("{spilled:.1}"),
        ]);
        out.push(Row {
            threshold: thr,
            mean_power_frac: rep.mean_power_fraction(),
            congested_fraction: rep.congested_fraction(),
            mean_spilled_demands: spilled,
        });
    }
    print_table(
        "Ablation: utilization threshold sweep (GEANT-like replay)",
        &["threshold", "mean power", "congested intervals", "mean spilled demands"],
        &rows,
    );
    println!("\npaper: lower thresholds wake on-demand paths sooner (more headroom, more power)");
    let monotone = out.windows(2).all(|w| w[1].mean_power_frac <= w[0].mean_power_frac + 0.02);
    println!("measured: power weakly decreases as threshold loosens: {monotone}");

    write_json("ablation_threshold", &out);
}
