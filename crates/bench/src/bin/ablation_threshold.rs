//! Ablation — TE activation threshold / safety margin (§4.4–4.5).
//!
//! Paper: "REsPoNseTE allows the ISPs to set a link utilization
//! threshold, which [...] prevents the performance penalties and
//! congestion by activating the on-demand paths sooner"; the safety
//! margin `sm` trades power savings against reserved headroom.
//!
//! We sweep the threshold and report mean power and congestion over the
//! GÉANT-like replay. Ported to the scenario engine: the sweep is a
//! `SweepRunner` grid over one replay-engine scenario, executed on all
//! cores in parallel.
//!
//! Usage: `--pairs 120 --days 3 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{Axis, Param, SweepRunner};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold: f64,
    mean_power_frac: f64,
    congested_fraction: f64,
    mean_spilled_demands: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let days: usize = arg("days", 3);
    let seed: u64 = arg("seed", 1);

    // Peak just above the always-on capacity so the threshold choice
    // matters (like Fig. 5): the replay engine scales the trace to
    // 1.15 x what the always-on paths alone support.
    let base = ecp_bench::scenarios::ablation_threshold(pairs_n, days, seed);

    eprintln!("sweeping thresholds over the replay scenario (parallel)...");
    let sweep = SweepRunner::new(
        base,
        vec![Axis::new(Param::Threshold, [0.5, 0.7, 0.9, 0.95, 1.0])],
    );
    let result = sweep.run().expect("threshold sweep runs");

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for row in &result.rows {
        let thr = row.params[0].1;
        let rep = &row.report;
        let congested = rep.congested_fraction.unwrap_or(0.0);
        let spilled = rep.mean_spilled_demands.unwrap_or(0.0);
        rows.push(vec![
            format!("{:.0}%", 100.0 * thr),
            format!("{:.1}%", 100.0 * rep.mean_power_frac),
            format!("{:.2}%", 100.0 * congested),
            format!("{spilled:.1}"),
        ]);
        out.push(Row {
            threshold: thr,
            mean_power_frac: rep.mean_power_frac,
            congested_fraction: congested,
            mean_spilled_demands: spilled,
        });
    }
    print_table(
        "Ablation: utilization threshold sweep (GEANT-like replay)",
        &[
            "threshold",
            "mean power",
            "congested intervals",
            "mean spilled demands",
        ],
        &rows,
    );
    println!("\npaper: lower thresholds wake on-demand paths sooner (more headroom, more power)");
    let monotone = out
        .windows(2)
        .all(|w| w[1].mean_power_frac <= w[0].mean_power_frac + 0.02);
    println!("measured: power weakly decreases as threshold loosens: {monotone}");

    write_json("ablation_threshold", &out);
}
