//! Run the whole evaluation: a thin wrapper over the checked-in
//! full-registry campaign (`examples/campaign_full_registry.toml`),
//! which names every experiment family in the scenario registry.
//!
//! Sharded execution, cache/resume, and the comparison artifacts all
//! come from `ecp-campaign` — re-running skips every cached run, and
//! the Markdown/CSV/JSON report lands next to the stored runs. The
//! shard count defaults to the spec's `shards` setting.
//!
//! `cargo run --release -p ecp-bench --bin run_all [-- --spec PATH
//!  --shards 4 --workers subprocess]`
//!
//! (`--workers subprocess` re-invokes the sibling `campaign` binary as
//! `campaign worker --shard k/N`; build it first.)

use ecp_bench::arg;
use ecp_campaign::{exec, report, CampaignError, CampaignSpec, ResultStore, Workers};
use std::process::exit;

fn main() {
    let spec_path: String = arg("spec", "examples/campaign_full_registry.toml".to_string());
    let mode: String = arg("workers", "inprocess".to_string());
    let resolver = |id: &str| ecp_bench::scenarios::campaign_scenario(id);

    let run = || -> Result<exec::ExecStats, CampaignError> {
        let spec = CampaignSpec::from_path(spec_path.as_ref())?;
        let shards: usize = arg("shards", spec.shard_count());
        let out = spec.resolved_output_dir(None);
        let store = ResultStore::open(&out)?;
        let workers = match mode.as_str() {
            "inprocess" => Workers::InProcess,
            "subprocess" => {
                // Workers are `campaign worker` re-invocations (the
                // sibling binary owns the worker subcommand).
                let program = std::env::current_exe()
                    .ok()
                    .and_then(|p| p.parent().map(|d| d.join("campaign")))
                    .ok_or_else(|| CampaignError::Worker("locate campaign binary".into()))?;
                if !program.exists() {
                    return Err(CampaignError::Worker(format!(
                        "{} not found — build it first (`cargo build --release -p ecp-bench \
                         --bin campaign`) or use --workers inprocess",
                        program.display()
                    )));
                }
                Workers::Subprocess(exec::WorkerCommand {
                    program,
                    args: vec![
                        "worker".into(),
                        spec_path.clone(),
                        "--out".into(),
                        out.display().to_string(),
                    ],
                })
            }
            other => {
                return Err(CampaignError::Spec(format!(
                    "unknown worker mode `{other}`"
                )))
            }
        };
        let stats = exec::execute(
            &spec,
            &resolver,
            &store,
            shards,
            &exec::ExecOptions::default(),
            &workers,
        )?;
        report::generate(&spec, &resolver, &store, &out)?;
        Ok(stats)
    };

    match run() {
        Ok(stats) => {
            println!("stats: {stats}");
            if stats.failed > 0 {
                eprintln!("{} runs recorded failures; see the report", stats.failed);
                exit(1);
            }
            println!("all experiments completed; see the campaign report");
        }
        Err(e) => {
            eprintln!("run_all: {e}");
            exit(1);
        }
    }
}
