//! Run every figure/ablation binary in sequence (scaled-down defaults
//! suitable for a single sitting; pass-through of `--fast` shrinks the
//! heavy replays further).
//!
//! `cargo run --release -p ecp-bench --bin run_all [-- --fast true]`

use std::process::Command;

fn main() {
    let fast: bool = ecp_bench::arg("fast", false);
    let bins: Vec<(&str, Vec<&str>)> = vec![
        ("fig1a_traffic_deviation", vec![]),
        (
            "fig1b_recomputation_rate",
            if fast {
                vec!["--days", "2", "--pairs", "80"]
            } else {
                vec![]
            },
        ),
        (
            "fig2a_config_dominance",
            if fast {
                vec!["--days", "2", "--pairs", "80"]
            } else {
                vec![]
            },
        ),
        (
            "fig2b_critical_paths",
            if fast {
                vec![
                    "--geant-days",
                    "2",
                    "--dc-days",
                    "2",
                    "--pairs",
                    "60",
                    "--fat-k",
                    "6",
                ]
            } else {
                vec![]
            },
        ),
        ("fig4_fattree_sine", vec![]),
        (
            "fig5_geant_replay",
            if fast {
                vec!["--days", "2", "--pairs", "80"]
            } else {
                vec![]
            },
        ),
        (
            "fig6_genuity_utilization",
            if fast { vec!["--pairs", "80"] } else { vec![] },
        ),
        ("fig7_click_adaptation", vec![]),
        ("fig8_adaptation", vec![]),
        (
            "fig9_streaming",
            if fast {
                vec!["--clients", "20", "--duration", "60", "--runs", "2"]
            } else {
                vec![]
            },
        ),
        (
            "text_web_latency",
            if fast {
                vec!["--requests", "10"]
            } else {
                vec![]
            },
        ),
        (
            "text_alwayson_capacity",
            if fast { vec!["--pairs", "60"] } else { vec![] },
        ),
        (
            "text_failover_coverage",
            if fast { vec!["--pairs", "60"] } else { vec![] },
        ),
        (
            "text_peak_provisioning",
            if fast {
                vec!["--days", "3", "--pairs", "60"]
            } else {
                vec![]
            },
        ),
        (
            "extension_replan_trigger",
            if fast {
                vec!["--days", "6", "--pairs", "60"]
            } else {
                vec![]
            },
        ),
        ("extension_packet_latency", vec![]),
        ("extension_opportunistic_sleep", vec![]),
        (
            "ablation_stress_exclusion",
            if fast { vec!["--pairs", "60"] } else { vec![] },
        ),
        (
            "ablation_num_paths",
            if fast { vec!["--pairs", "60"] } else { vec![] },
        ),
        (
            "ablation_beta_latency",
            if fast { vec!["--pairs", "60"] } else { vec![] },
        ),
        (
            "ablation_threshold",
            if fast {
                vec!["--pairs", "60", "--days", "1"]
            } else {
                vec![]
            },
        ),
    ];

    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate binary dir");
    let mut failures = Vec::new();
    for (bin, args) in &bins {
        println!("\n########## {bin} {} ##########", args.join(" "));
        let status = Command::new(exe_dir.join(bin)).args(args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {bin} failed: {other:?}");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; results under results/");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
