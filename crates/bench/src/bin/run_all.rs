//! Run every experiment binary in the scenario registry in sequence
//! (scaled-down defaults suitable for a single sitting; `--fast`
//! applies each entry's registered scaled-down arguments).
//!
//! `cargo run --release -p ecp-bench --bin run_all [-- --fast true]`

use ecp_bench::scenarios::registry;
use std::process::Command;

fn main() {
    let fast: bool = ecp_bench::arg("fast", false);
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate binary dir");
    let mut failures = Vec::new();
    for exp in registry() {
        let args: &[&str] = if fast { exp.fast_args } else { &[] };
        println!(
            "\n########## {} [{}] {} ##########",
            exp.name,
            exp.kind,
            args.join(" ")
        );
        let status = Command::new(exe_dir.join(exp.name)).args(args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {} failed: {other:?}", exp.name);
                failures.push(exp.name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; results under results/");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
