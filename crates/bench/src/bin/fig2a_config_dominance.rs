//! Figure 2a — routing-configuration dominance.
//!
//! Paper: "a single routing configuration \[the minimal power tree\] is
//! active almost 60% of times \[but\] the total number of different
//! routing configurations (13 slices) is still large, beyond the
//! capabilities of today's network elements."
//!
//! The scenario replays the GÉANT-like trace in `Recompute` mode; this
//! binary only formats the dominance slices.
//!
//! Usage: `--days 15 --pairs 120 --seed 1 --volume-frac 0.42`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    pairs: usize,
    distinct_configurations: usize,
    dominant_fraction: f64,
    slices: Vec<f64>,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);
    let volume_frac: f64 = arg("volume-frac", 0.42);

    let scenario =
        ecp_bench::scenarios::optimal_recompute_geant("fig2a", days, pairs_n, volume_frac, seed);
    eprintln!("replaying {days} days; clustering active subsets...");
    let report = run_scenario(&scenario).expect("fig2a scenario runs");
    let rec = report
        .replay
        .and_then(|r| r.recompute)
        .expect("Recompute mode yields dominance");

    let rows: Vec<Vec<String>> = rec
        .slices
        .iter()
        .enumerate()
        .take(15)
        .map(|(i, f)| vec![format!("config #{}", i + 1), format!("{:.1}%", 100.0 * f)])
        .collect();
    print_table(
        "Fig 2a: fraction of time under each routing configuration",
        &["configuration", "time share"],
        &rows,
    );
    println!(
        "\npaper: dominant config ~60% of time, 13 configs total   measured: {:.1}% dominant, {} configs",
        100.0 * rec.dominant_fraction,
        rec.distinct_configurations
    );

    write_json(
        "fig2a_config_dominance",
        &Out {
            days,
            pairs: pairs_n,
            distinct_configurations: rec.distinct_configurations,
            dominant_fraction: rec.dominant_fraction,
            slices: rec.slices,
        },
    );
}
