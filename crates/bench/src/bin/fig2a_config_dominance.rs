//! Figure 2a — routing-configuration dominance.
//!
//! Paper: "a single routing configuration \[the minimal power tree\] is
//! active almost 60% of times \[but\] the total number of different
//! routing configurations (13 slices) is still large, beyond the
//! capabilities of today's network elements."
//!
//! Usage: `--days 15 --pairs 120 --seed 1 --volume-frac 0.42`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::oracle::OracleConfig;
use ecp_routing::recompute::{recomputation_rate, ConfigDominance};
use ecp_routing::subset::optimal_subset;
use ecp_topo::gen::geant;
use ecp_traffic::{geant_like_trace, random_od_pairs};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    pairs: usize,
    distinct_configurations: usize,
    dominant_fraction: f64,
    slices: Vec<f64>,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);
    let volume_frac: f64 = arg("volume-frac", 0.42);

    let topo = geant();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let oc = OracleConfig::default();
    let peak = ecp_bench::max_feasible_volume(&topo, &pairs, &oc) * volume_frac;
    let trace = geant_like_trace(&topo, &pairs, days, peak, seed);
    let pm = PowerModel::cisco12000();

    eprintln!(
        "replaying {} intervals; clustering active subsets...",
        trace.len()
    );
    let rep = recomputation_rate(&topo, &trace, |tm| optimal_subset(&topo, &pm, tm, &oc));
    let dom = ConfigDominance::from_signatures(&rep.signatures);

    let slices: Vec<f64> = dom
        .configs
        .iter()
        .map(|&(_, c)| c as f64 / dom.intervals as f64)
        .collect();
    let rows: Vec<Vec<String>> = slices
        .iter()
        .enumerate()
        .take(15)
        .map(|(i, f)| vec![format!("config #{}", i + 1), format!("{:.1}%", 100.0 * f)])
        .collect();
    print_table(
        "Fig 2a: fraction of time under each routing configuration",
        &["configuration", "time share"],
        &rows,
    );
    println!(
        "\npaper: dominant config ~60% of time, 13 configs total   measured: {:.1}% dominant, {} configs",
        100.0 * dom.dominant_fraction(),
        dom.distinct()
    );

    write_json(
        "fig2a_config_dominance",
        &Out {
            days,
            pairs: pairs_n,
            distinct_configurations: dom.distinct(),
            dominant_fraction: dom.dominant_fraction(),
            slices,
        },
    );
}
