//! Figure 1a — CCDF of 5-minute traffic change in a datacenter.
//!
//! Paper: "in almost 50% cases the traffic changes at least by 20%
//! percent over a 5-min interval" (Google production trace). The
//! scenario replays the DC-like synthetic trace in `TraceStats` mode;
//! this binary only formats the CCDF.
//!
//! Usage: `cargo run --release -p ecp-bench --bin fig1a_traffic_deviation
//! [--days 8] [--groups 50] [--seed 11]`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    groups: usize,
    seed: u64,
    /// `(threshold_percent, fraction_of_intervals_with_change >= thr)`
    ccdf: Vec<(f64, f64)>,
    p_change_ge_20pct: f64,
}

fn main() {
    let days: usize = arg("days", 8);
    let groups: usize = arg("groups", 50);
    let seed: u64 = arg("seed", 11);

    let scenario = ecp_bench::scenarios::fig1a(days, groups, seed);
    let report = run_scenario(&scenario).expect("fig1a scenario runs");
    let ccdf = report
        .replay
        .and_then(|r| r.deviation_ccdf)
        .expect("TraceStats mode yields a CCDF");
    let at = |pct: usize| ccdf[pct].1;

    let rows: Vec<Vec<String>> = [0usize, 5, 10, 20, 30, 40, 50, 60, 80, 100]
        .iter()
        .map(|&p| vec![format!("{p}%"), format!("{:.1}%", 100.0 * at(p))])
        .collect();
    print_table(
        "Fig 1a: traffic deviation CCDF over 5-min intervals (DC-like trace)",
        &["change >=", "fraction of intervals"],
        &rows,
    );
    println!(
        "\npaper: ~50% of intervals change by >= 20%   measured: {:.1}%",
        100.0 * at(20)
    );

    write_json(
        "fig1a_traffic_deviation",
        &Out {
            days,
            groups,
            seed,
            p_change_ge_20pct: at(20),
            ccdf,
        },
    );
}
