//! New scenario (inexpressible in the seed harness): **rolling
//! maintenance windows under diurnal traffic**.
//!
//! A hierarchical PoP-access ISP serves a full day of diurnal traffic
//! (trough at 04:00, peak at 16:00) while operations rolls a
//! maintenance window across the backbone routers: each backbone node
//! is drained — all its links down — for a fixed window, one node after
//! another, overnight starting at 01:00. REsPoNse's failover tables
//! must route around each drained router; the interesting outputs are
//! the served fraction during the windows and how much sleeping the
//! network still achieves off-peak while degraded. (Daytime-peak
//! shortfall at high load fractions is a property of the N = 3
//! installed tables, not of the maintenance windows — the windows are
//! deliberately scheduled into the quiet night hours.)
//!
//! Usage: `--windows 4 --window-mins 45 --seed 3`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;

fn main() {
    let windows: usize = arg("windows", 4);
    let window_mins: f64 = arg("window-mins", 45.0);
    let seed: u64 = arg("seed", 3);

    let scenario = ecp_bench::scenarios::rolling_maintenance(windows, window_mins, seed);

    let report = run_scenario(&scenario).expect("maintenance scenario runs");

    let delivered = report.delivered_series.as_deref().unwrap_or_default();
    let power = report.power_series.as_deref().unwrap_or_default();
    let rows: Vec<Vec<String>> = delivered
        .iter()
        .zip(power)
        .step_by((delivered.len() / 24).max(1))
        .map(|(&(t, off, del), &(_, pf))| {
            vec![
                format!("{:02.0}:{:02.0}", (t / 3600.0).floor(), (t % 3600.0) / 60.0),
                format!("{:.0}", off / 1e6),
                format!("{:.0}", del / 1e6),
                format!("{:.0}%", 100.0 * del / off.max(1.0)),
                format!("{:.1}%", 100.0 * pf),
            ]
        })
        .collect();
    print_table(
        "Rolling backbone maintenance under diurnal traffic (PoP-access)",
        &[
            "time",
            "offered (Mbps)",
            "delivered (Mbps)",
            "served",
            "power",
        ],
        &rows,
    );
    println!(
        "\nmean power {:.1}% | delivered fraction {:.3} | max tracking lag {:.1} s | {} windows x {:.0} min",
        100.0 * report.mean_power_frac,
        report.mean_delivered_fraction,
        report.max_tracking_lag_s,
        windows,
        window_mins
    );

    write_json("scenario_rolling_maintenance", &report);
}
