//! The campaign CLI: run, shard-work, inspect, and report whole
//! evaluation campaigns (`ecp-campaign`) with the experiment registry
//! (`ecp_bench::scenarios::campaign_registry`) resolving `registry =
//! "<id>"` entries.
//!
//! ```text
//! campaign run    <campaign.toml> [--shards N] [--workers inprocess|subprocess]
//!                                 [--out DIR] [--threads T] [--force] [--only SUB]
//!                                 [--progress jsonl] [--profile]
//! campaign worker <campaign.toml> --shard k/N [--out DIR] [--threads T] [--only SUB]
//!                                 [--progress jsonl] [--profile]
//! campaign report <campaign.toml> [--out DIR] [--only SUB]
//! campaign list   <campaign.toml> [--out DIR] [--only SUB]
//! campaign watch  <campaign.toml> [--file PATH] [--out DIR] [--only SUB]
//!                                 [--html] [--interval-ms N] [--timeout-s S]
//! ```
//!
//! `run` executes every entry (sharded in-process by default, or across
//! `--workers subprocess` re-invocations of this binary), streams each
//! `ScenarioReport` into the content-addressed result store under the
//! output directory, prints `stats: runs=... executed=... cached=...`,
//! and writes the comparison artifacts. A second `run` of the same
//! campaign reports `executed=0`: every run is served from the store.
//! Scenario failures (e.g. unsupported spec combinations) are recorded
//! as failed runs, not aborts; the process exits 0 unless the campaign
//! itself cannot run.
//!
//! `--only SUB` restricts every command to the entries whose name
//! contains `SUB` — iterate on one A/B entry without re-expanding the
//! whole TOML. Results land in the same store, so a later full run
//! reuses them.
//!
//! `--progress jsonl` streams one [`ecp_campaign::ProgressEvent`] JSON
//! line to stdout per run start/finish (delivered fraction and power on
//! finish). With subprocess workers the flag is forwarded, and worker
//! stdout is inherited, so events from every shard interleave on the
//! parent's stdout — whole lines, arbitrary order.
//!
//! `watch` is the live half of the observatory: it consumes the
//! `--progress jsonl` stream of a concurrently-running campaign —
//! piped on stdin (`campaign run ... --progress jsonl | campaign watch
//! ...`) or tailed from a growing file via `--file` — and re-renders a
//! per-entry dashboard (progress, in-flight runs, cache hits, latest
//! delivered/power/settle/shortfall, rolling wall-clock). On a terminal
//! it redraws in place; on a pipe it prints throttled snapshots (CI
//! friendly). `--html` additionally rewrites `report.html` from the
//! store as runs land. It exits when every expected run has finished,
//! the stream ends, or `--timeout-s` elapses.
//!
//! `--profile` runs every freshly-executed simnet scenario through the
//! span-profiled entry point: per-run wall time and the top phases land
//! in `timings/<hash>.json` sidecars, surface in the report's `wall (s)`
//! / `slowest phase` columns, and ride `RunFinished` progress events.
//! Stored runs, traces, and summaries stay byte-identical to an
//! unprofiled campaign (Span lines are stripped before trace storage).

use ecp_campaign::{exec, report, CampaignError, CampaignSpec, ResultStore, Workers};
use std::path::Path;
use std::process::exit;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign <run|worker|report|list|watch> <campaign.toml> \
         [--shards N] [--workers inprocess|subprocess] [--shard k/N] \
         [--out DIR] [--threads T] [--force] [--only ENTRY-SUBSTRING] \
         [--progress jsonl] [--profile] \
         [--file PROGRESS.jsonl] [--html] [--interval-ms N] [--timeout-s S]"
    );
    exit(2)
}

fn load(
    spec_path: &str,
    out: Option<&str>,
    only: Option<&str>,
) -> Result<(CampaignSpec, ResultStore), CampaignError> {
    let mut spec = CampaignSpec::from_path(Path::new(spec_path))?;
    // The store location never depends on the filter: partial runs
    // share their cache with full runs.
    let store = ResultStore::open(&spec.resolved_output_dir(out))?;
    if let Some(filter) = only {
        spec.retain_matching(filter)?;
    }
    Ok((spec, store))
}

/// The live dashboard: fold a `--progress jsonl` stream (stdin pipe or
/// a growing `--file`) into a per-entry table, redrawn in place on a
/// terminal and printed as throttled snapshots on a pipe.
fn cmd_watch(
    args: &[String],
    spec: &CampaignSpec,
    store: &ResultStore,
    resolver: &dyn Fn(&str) -> Option<ecp_scenario::Scenario>,
    out: Option<&str>,
) -> Result<(), CampaignError> {
    use std::io::{BufRead, IsTerminal, Write};

    // Expected per-entry run counts, in spec order.
    let units = exec::expand(spec, &resolver)?;
    let mut expected: Vec<(String, usize)> = Vec::new();
    for u in &units {
        match expected.iter_mut().find(|(n, _)| n == &u.entry) {
            Some((_, c)) => *c += 1,
            None => expected.push((u.entry.clone(), 1)),
        }
    }
    let mut state = ecp_campaign::WatchState::new(&spec.name, &expected);

    let html = has_flag(args, "--html");
    let interval = std::time::Duration::from_millis(
        flag(args, "--interval-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(500),
    );
    let timeout_s: Option<f64> = flag(args, "--timeout-s").and_then(|v| v.parse().ok());
    let out_dir = spec.resolved_output_dir(out);
    let start = std::time::Instant::now();
    let tty = std::io::stdout().is_terminal();
    let mut last_render: Option<std::time::Instant> = None;

    let refresh = |state: &ecp_campaign::WatchState,
                   last: &mut Option<std::time::Instant>,
                   force: bool|
     -> Result<(), CampaignError> {
        if !force && !tty && last.is_some_and(|t| t.elapsed() < interval) {
            return Ok(());
        }
        *last = Some(std::time::Instant::now());
        let table = state.render(start.elapsed().as_secs_f64());
        if tty {
            print!("\x1b[H\x1b[2J{table}");
            std::io::stdout().flush().ok();
        } else {
            println!("{table}");
        }
        if html {
            let summary = report::summarize(spec, &resolver, store)?;
            ecp_campaign::write_html(&summary, store, &out_dir)?;
        }
        Ok(())
    };

    match flag(args, "--file") {
        Some(path) => {
            // Tail a growing file: consume complete lines only, poll
            // for more until done / timeout.
            let mut pos = 0usize;
            loop {
                let content = std::fs::read_to_string(&path).unwrap_or_default();
                if content.len() > pos {
                    let new = &content[pos..];
                    if let Some(nl) = new.rfind('\n') {
                        let mut saw_event = false;
                        for line in new[..=nl].lines() {
                            saw_event |= state.apply_line(line);
                        }
                        pos += nl + 1;
                        if saw_event {
                            refresh(&state, &mut last_render, false)?;
                        }
                    }
                }
                if state.done() {
                    break;
                }
                if let Some(t) = timeout_s {
                    if start.elapsed().as_secs_f64() >= t {
                        break;
                    }
                }
                std::thread::sleep(interval);
            }
        }
        None => {
            // Drain to EOF even once all expected runs have finished:
            // breaking early would close the pipe under a producer that
            // still has its stats/report trailer to print (SIGPIPE).
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line =
                    line.map_err(|e| CampaignError::Io(format!("read progress stream: {e}")))?;
                if state.apply_line(&line) {
                    refresh(&state, &mut last_render, false)?;
                }
            }
        }
    }
    refresh(&state, &mut last_render, true)?;
    println!(
        "watch: done finished={} expected={} cached={} failed={}",
        state.finished(),
        state.expected(),
        state.cached(),
        state.failed()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(spec_path)) = (args.first(), args.get(1)) else {
        usage()
    };
    let out = flag(&args, "--out");
    let only = flag(&args, "--only");
    let threads = flag(&args, "--threads").and_then(|t| t.parse().ok());
    let resolver = |id: &str| ecp_bench::scenarios::campaign_scenario(id);

    let result: Result<(), CampaignError> = (|| {
        let (spec, store) = load(spec_path, out.as_deref(), only.as_deref())?;
        let progress = match flag(&args, "--progress").as_deref() {
            None => false,
            Some("jsonl") => true,
            Some(other) => {
                return Err(CampaignError::Spec(format!(
                    "unknown progress format `{other}` (expected `jsonl`)"
                )))
            }
        };
        let profile = has_flag(&args, "--profile");
        let opts = exec::ExecOptions {
            threads,
            force: has_flag(&args, "--force"),
            progress,
            profile,
        };
        match cmd.as_str() {
            "run" => {
                let shards = flag(&args, "--shards")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| spec.shard_count());
                let mode = flag(&args, "--workers").unwrap_or_else(|| "inprocess".into());
                let workers = match mode.as_str() {
                    "inprocess" => Workers::InProcess,
                    "subprocess" => {
                        let program = std::env::current_exe()
                            .map_err(|e| CampaignError::Worker(format!("locate self: {e}")))?;
                        let mut worker_args = vec!["worker".to_string(), spec_path.clone()];
                        worker_args.push("--out".into());
                        worker_args.push(
                            spec.resolved_output_dir(out.as_deref())
                                .display()
                                .to_string(),
                        );
                        if let Some(t) = threads {
                            worker_args.push("--threads".into());
                            worker_args.push(t.to_string());
                        }
                        if let Some(o) = &only {
                            worker_args.push("--only".into());
                            worker_args.push(o.clone());
                        }
                        if progress {
                            worker_args.push("--progress".into());
                            worker_args.push("jsonl".into());
                        }
                        if profile {
                            worker_args.push("--profile".into());
                        }
                        Workers::Subprocess(exec::WorkerCommand {
                            program,
                            args: worker_args,
                        })
                    }
                    other => {
                        return Err(CampaignError::Spec(format!(
                            "unknown worker mode `{other}`"
                        )))
                    }
                };
                let stats = exec::execute(&spec, &resolver, &store, shards, &opts, &workers)?;
                println!("stats: {stats}");
                let (_, paths) = report::generate(
                    &spec,
                    &resolver,
                    &store,
                    &spec.resolved_output_dir(out.as_deref()),
                )?;
                for p in paths {
                    println!("[campaign] wrote {}", p.display());
                }
                Ok(())
            }
            "worker" => {
                let shard = flag(&args, "--shard")
                    .as_deref()
                    .and_then(exec::parse_shard)
                    .ok_or_else(|| {
                        CampaignError::Spec("worker needs a valid --shard k/N".into())
                    })?;
                let stats = exec::run_shard(&spec, &resolver, &store, shard, &opts)?;
                println!("shard {}/{}: {stats}", shard.0, shard.1);
                Ok(())
            }
            "report" => {
                let (_, paths) = report::generate(
                    &spec,
                    &resolver,
                    &store,
                    &spec.resolved_output_dir(out.as_deref()),
                )?;
                for p in paths {
                    println!("[campaign] wrote {}", p.display());
                }
                Ok(())
            }
            "watch" => cmd_watch(&args, &spec, &store, &resolver, out.as_deref()),
            "list" => {
                let units = exec::expand(&spec, &resolver)?;
                let shards = spec.shard_count();
                for u in &units {
                    let hash = ecp_campaign::run_hash(&u.scenario);
                    let state = if store.contains(&hash) {
                        "cached"
                    } else {
                        "pending"
                    };
                    println!(
                        "{:>4}  shard {}  {:7}  {}  {} [{}]",
                        u.global,
                        u.shard(shards),
                        state,
                        hash,
                        u.entry,
                        u.scenario.name
                    );
                }
                Ok(())
            }
            _ => usage(),
        }
    })();

    if let Err(e) = result {
        eprintln!("campaign: {e}");
        exit(1);
    }
}
