//! Figure 2b — how many energy-critical paths per OD pair cover the
//! traffic.
//!
//! Paper: "In the particular case of GÉANT, only 2 precomputed paths per
//! node pair are enough to cover almost 98% of the traffic, while 3
//! cover all traffic. [FatTree with 36 core switches:] 5 precomputed
//! paths are enough to carry the traffic matrices over an 8-day period."
//!
//! Usage: `--geant-days 15 --dc-days 8 --pairs 120 --fat-k 12 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::oracle::OracleConfig;
use ecp_routing::subset::optimal_subset;
use ecp_topo::gen::{fat_tree, geant, FatTreeConfig};
use ecp_topo::GBPS;
use ecp_traffic::{
    dc_like_volume_trace, fat_tree_far_pairs, geant_like_trace, random_od_pairs, uniform_matrix,
    Trace, TrafficMatrix,
};
use respons_core::critical::PathUsage;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    geant_coverage: Vec<(usize, f64)>,
    fattree_coverage: Vec<(usize, f64)>,
    geant_paths_for_98pct: usize,
    fattree_paths_for_98pct: usize,
}

/// Replay a trace with per-interval recomputed subsets, accumulating
/// path usage.
fn usage_of<F>(trace: &Trace, mut optimize: F) -> PathUsage
where
    F: FnMut(&TrafficMatrix) -> Option<ecp_routing::RouteSet>,
{
    let mut usage = PathUsage::new();
    let mut last_routes = None;
    for tm in &trace.matrices {
        if let Some(rs) = optimize(tm) {
            usage.record(&rs, tm, trace.interval_s);
            last_routes = Some(rs);
        } else if let Some(rs) = &last_routes {
            usage.record(rs, tm, trace.interval_s);
        }
    }
    usage
}

fn paths_for(cov: &[(usize, f64)], target: f64) -> usize {
    cov.iter()
        .find(|&&(_, c)| c >= target)
        .map(|&(x, _)| x)
        .unwrap_or(cov.len())
}

fn main() {
    let geant_days: usize = arg("geant-days", 15);
    let dc_days: usize = arg("dc-days", 8);
    let pairs_n: usize = arg("pairs", 120);
    let fat_k: usize = arg("fat-k", 12);
    let seed: u64 = arg("seed", 1);
    let volume_frac: f64 = arg("volume-frac", 0.42);
    let xs = [1usize, 2, 3, 4, 5];

    // ---- GÉANT ---------------------------------------------------------
    let topo = geant();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let oc = OracleConfig::default();
    let peak = ecp_bench::max_feasible_volume(&topo, &pairs, &oc) * volume_frac;
    let trace = geant_like_trace(&topo, &pairs, geant_days, peak, seed);
    let pm = PowerModel::cisco12000();
    eprintln!("GEANT: replaying {} intervals...", trace.len());
    let gu = usage_of(&trace, |tm| {
        optimal_subset(&topo, &pm, tm, &oc).map(|r| r.routes)
    });
    let geant_cov: Vec<(usize, f64)> = xs.iter().map(|&x| (x, gu.coverage(x))).collect();

    // ---- FatTree (36-core = k=12), driven by the DC volume trace -------
    let (ft, ix) = fat_tree(&FatTreeConfig {
        k: fat_k,
        ..Default::default()
    });
    let far = fat_tree_far_pairs(&ix);
    let dc_pm = PowerModel::commodity_dc();
    // Volume series scaled into [0, 0.9 Gbps] per flow, one 15-min-like
    // step per point (subsampled: DC trace is 5-min).
    let vol = &dc_like_volume_trace(1, dc_days, seed)[0];
    let vmax = vol.iter().cloned().fold(0.0, f64::max);
    let matrices: Vec<TrafficMatrix> = vol
        .iter()
        .step_by(6)
        .map(|&v| uniform_matrix(&far, 0.9 * GBPS * v / vmax))
        .collect();
    let dc_trace = Trace {
        name: "dc".into(),
        interval_s: 1800.0,
        matrices,
    };
    eprintln!(
        "FatTree k={fat_k}: replaying {} intervals...",
        dc_trace.len()
    );
    // Single-order greedy pruning on the large fat-tree (the ensemble is
    // unnecessary here: we only need *which paths recur*, and the k=12
    // fat-tree makes the 4x ensemble needlessly slow).
    let fu = usage_of(&dc_trace, |tm| {
        ecp_routing::subset::greedy_prune(
            &ft,
            &dc_pm,
            tm,
            &oc,
            ecp_routing::subset::PruneOrder::PowerDesc,
        )
        .map(|r| r.routes)
    });
    let fat_cov: Vec<(usize, f64)> = xs.iter().map(|&x| (x, fu.coverage(x))).collect();

    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            vec![
                x.to_string(),
                format!("{:.1}%", 100.0 * geant_cov[i].1),
                format!("{:.1}%", 100.0 * fat_cov[i].1),
            ]
        })
        .collect();
    print_table(
        "Fig 2b: traffic covered by the top-X paths per OD pair",
        &["paths (X)", "GEANT", "FatTree"],
        &rows,
    );
    let g98 = paths_for(&geant_cov, 0.98);
    let f98 = paths_for(&fat_cov, 0.98);
    println!("\npaper: GEANT 2 paths -> ~98%, 3 -> ~100%; FatTree needs ~5");
    println!("measured: GEANT {g98} paths -> >=98%; FatTree {f98} paths -> >=98%");

    write_json(
        "fig2b_critical_paths",
        &Out {
            geant_coverage: geant_cov,
            fattree_coverage: fat_cov,
            geant_paths_for_98pct: g98,
            fattree_paths_for_98pct: f98,
        },
    );
}
