//! Figure 2b — how many energy-critical paths per OD pair cover the
//! traffic.
//!
//! Paper: "In the particular case of GÉANT, only 2 precomputed paths per
//! node pair are enough to cover almost 98% of the traffic, while 3
//! cover all traffic. [FatTree with 36 core switches:] 5 precomputed
//! paths are enough to carry the traffic matrices over an 8-day period."
//!
//! Two `Recompute`-mode replay scenarios (GÉANT/optimal and
//! fat-tree/greedy-prune over the DC volume trace) accumulate the
//! per-pair path usage; this binary only formats the coverage curves.
//!
//! Usage: `--geant-days 15 --dc-days 8 --pairs 120 --fat-k 12 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{run_scenario, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    geant_coverage: Vec<(usize, f64)>,
    fattree_coverage: Vec<(usize, f64)>,
    geant_paths_for_98pct: usize,
    fattree_paths_for_98pct: usize,
}

fn coverage_of(scenario: &Scenario) -> Vec<(usize, f64)> {
    run_scenario(scenario)
        .expect("fig2b scenario runs")
        .replay
        .and_then(|r| r.recompute)
        .expect("Recompute mode yields coverage")
        .coverage
}

fn paths_for(cov: &[(usize, f64)], target: f64) -> usize {
    cov.iter()
        .find(|&&(_, c)| c >= target)
        .map(|&(x, _)| x)
        .unwrap_or(cov.len())
}

fn main() {
    let geant_days: usize = arg("geant-days", 15);
    let dc_days: usize = arg("dc-days", 8);
    let pairs_n: usize = arg("pairs", 120);
    let fat_k: usize = arg("fat-k", 12);
    let seed: u64 = arg("seed", 1);
    let volume_frac: f64 = arg("volume-frac", 0.42);

    eprintln!("GEANT: replaying {geant_days} days (optimal subsets)...");
    let geant_cov = coverage_of(&ecp_bench::scenarios::optimal_recompute_geant(
        "fig2b-geant",
        geant_days,
        pairs_n,
        volume_frac,
        seed,
    ));
    eprintln!("FatTree k={fat_k}: replaying {dc_days} days (greedy pruning)...");
    let fat_cov = coverage_of(&ecp_bench::scenarios::fig2b_fattree(fat_k, dc_days, seed));

    let rows: Vec<Vec<String>> = geant_cov
        .iter()
        .zip(&fat_cov)
        .map(|(&(x, g), &(_, f))| {
            vec![
                x.to_string(),
                format!("{:.1}%", 100.0 * g),
                format!("{:.1}%", 100.0 * f),
            ]
        })
        .collect();
    print_table(
        "Fig 2b: traffic covered by the top-X paths per OD pair",
        &["paths (X)", "GEANT", "FatTree"],
        &rows,
    );
    let g98 = paths_for(&geant_cov, 0.98);
    let f98 = paths_for(&fat_cov, 0.98);
    println!("\npaper: GEANT 2 paths -> ~98%, 3 -> ~100%; FatTree needs ~5");
    println!("measured: GEANT {g98} paths -> >=98%; FatTree {f98} paths -> >=98%");

    write_json(
        "fig2b_critical_paths",
        &Out {
            geant_coverage: geant_cov,
            fattree_coverage: fat_cov,
            geant_paths_for_98pct: g98,
            fattree_paths_for_98pct: f98,
        },
    );
}
