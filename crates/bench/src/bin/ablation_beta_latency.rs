//! Ablation — REsPoNse-lat delay-bound slack β (constraint 4, §4.1).
//!
//! Paper: β (e.g. 25%) bounds `delay(O,D) ≤ (1+β)·delay_OSPF(O,D)`;
//! "REsPoNse-lat marginally reduces the savings while keeping the
//! latency acceptable" (Fig. 6 discussion).
//!
//! A `SweepRunner` grid over one scenario's β axis with the
//! `table_stats` analysis; this binary only formats output.
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{Axis, Param, SweepRunner};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    beta: f64,
    idle_power_frac: f64,
    mean_delay_stretch: f64,
    max_delay_stretch: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    // Negative axis value = no latency bound.
    let base = ecp_bench::scenarios::ablation_base("ablation-beta", pairs_n, seed);
    let sweep = SweepRunner::new(
        base,
        vec![Axis::new(Param::Beta, [-1.0, 1.0, 0.5, 0.25, 0.1, 0.0])],
    );
    eprintln!("sweeping beta over the planner (parallel)...");
    let result = sweep.run().expect("beta sweep runs");

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for row in &result.rows {
        let beta = row.params[0].1;
        let ts = row.report.table_stats.expect("table_stats selected");
        let label = if beta < 0.0 {
            "none".to_string()
        } else {
            format!("{beta:.2}")
        };
        rows.push(vec![
            label,
            format!("{:.1}%", 100.0 * ts.idle_power_frac),
            format!("{:.2}x", ts.mean_delay_stretch),
            format!("{:.2}x", ts.max_delay_stretch),
        ]);
        out.push(Row {
            beta: if beta < 0.0 { f64::INFINITY } else { beta },
            idle_power_frac: ts.idle_power_frac,
            mean_delay_stretch: ts.mean_delay_stretch,
            max_delay_stretch: ts.max_delay_stretch,
        });
    }
    print_table(
        "Ablation: REsPoNse-lat beta sweep (GEANT-like)",
        &[
            "beta",
            "idle power",
            "mean delay stretch",
            "max delay stretch",
        ],
        &rows,
    );
    println!(
        "\npaper: latency bound marginally reduces savings; delay stays within (1+beta)x OSPF"
    );
    // Tighter beta -> smaller max stretch, weakly higher power.
    let bounded = out
        .iter()
        .filter(|r| r.beta.is_finite())
        .all(|r| r.max_delay_stretch <= 1.0 + r.beta + 1e-6);
    println!("measured: all bounded runs satisfy the constraint: {bounded}");

    write_json("ablation_beta_latency", &out);
}
