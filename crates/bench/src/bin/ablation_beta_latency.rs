//! Ablation — REsPoNse-lat delay-bound slack β (constraint 4, §4.1).
//!
//! Paper: β (e.g. 25%) bounds `delay(O,D) ≤ (1+β)·delay_OSPF(O,D)`;
//! "REsPoNse-lat marginally reduces the savings while keeping the
//! latency acceptable" (Fig. 6 discussion).
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::ospf::invcap_weight;
use ecp_topo::algo::shortest_path;
use ecp_topo::gen::geant;
use ecp_traffic::random_od_pairs;
use respons_core::{Planner, PlannerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    beta: f64,
    idle_power_frac: f64,
    mean_delay_stretch: f64,
    max_delay_stretch: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let topo = geant();
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let full = pm.full_power(&topo);
    let w = invcap_weight(&topo);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for beta in [None, Some(1.0), Some(0.5), Some(0.25), Some(0.1), Some(0.0)] {
        eprintln!("planning with beta = {beta:?}...");
        let cfg = PlannerConfig {
            beta,
            ..Default::default()
        };
        let tables = Planner::new(&topo, &pm).plan_pairs(&cfg, &pairs);
        let idle = pm.network_power(&topo, &tables.always_on_active(&topo)) / full;
        // Delay stretch of always-on paths vs OSPF.
        let mut stretches = Vec::new();
        for (&(o, d), p) in tables.iter() {
            if let Some(sp) = shortest_path(&topo, o, d, &w, None) {
                let base = sp.latency(&topo);
                if base > 0.0 {
                    stretches.push(p.always_on.latency(&topo) / base);
                }
            }
        }
        let mean = stretches.iter().sum::<f64>() / stretches.len().max(1) as f64;
        let max = stretches.iter().cloned().fold(0.0, f64::max);
        let label = beta
            .map(|b| format!("{b:.2}"))
            .unwrap_or_else(|| "none".into());
        rows.push(vec![
            label,
            format!("{:.1}%", 100.0 * idle),
            format!("{mean:.2}x"),
            format!("{max:.2}x"),
        ]);
        out.push(Row {
            beta: beta.unwrap_or(f64::INFINITY),
            idle_power_frac: idle,
            mean_delay_stretch: mean,
            max_delay_stretch: max,
        });
    }
    print_table(
        "Ablation: REsPoNse-lat beta sweep (GEANT-like)",
        &[
            "beta",
            "idle power",
            "mean delay stretch",
            "max delay stretch",
        ],
        &rows,
    );
    println!(
        "\npaper: latency bound marginally reduces savings; delay stays within (1+beta)x OSPF"
    );
    // Tighter beta -> smaller max stretch, weakly higher power.
    let bounded = out
        .iter()
        .filter(|r| r.beta.is_finite())
        .all(|r| r.max_delay_stretch <= 1.0 + r.beta + 1e-6);
    println!("measured: all bounded runs satisfy the constraint: {bounded}");

    write_json("ablation_beta_latency", &out);
}
