//! Figure 5 — REsPoNse power over a 15-day GÉANT traffic replay.
//!
//! Paper: "energy savings are around 30% and 42% (for representative
//! hardware today and a future alternative, respectively) [...] the
//! power consumption varies little with large changes in traffic demand
//! [...] there was no need to recompute the on-demand paths — a single
//! computation [...] was sufficient for the 15-day period."
//!
//! Two replay scenarios: today's hardware derives the trace peak from
//! its always-on capacity; the alternative-hardware run replays the
//! *same* trace (peak pinned to the first run's resolved value) over
//! tables planned with the chassis/10 model. OSPF has no sleeping
//! capability at all, so its draw is flat 100%.
//!
//! Usage: `--days 15 --pairs 150 --nodes 19 --seed 1 --peak-frac 1.15`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    pairs: usize,
    ospf_power_frac: f64,
    response_mean_frac: f64,
    response_alt_hw_mean_frac: f64,
    savings_today_pct: f64,
    savings_alt_hw_pct: f64,
    congested_fraction: f64,
    power_stddev: f64,
    daily_mean_frac: Vec<f64>,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);
    let peak_vs_always_on: f64 = arg("peak-frac", 1.15);
    let nodes_n: usize = arg("nodes", 19);
    let ospf_frac = 1.0;

    eprintln!("planning REsPoNse tables once (cisco12000) and replaying...");
    let scenario = ecp_bench::scenarios::fig5(days, pairs_n, nodes_n, peak_vs_always_on, seed);
    let report = run_scenario(&scenario).expect("fig5 scenario runs");
    let detail = report.replay.as_ref().expect("replay detail");
    let peak = detail.trace_peak_bps.expect("resolved trace peak");
    eprintln!(
        "trace peak {:.2} Gbps; alternative-hardware replay...",
        peak / 1e9
    );
    let alt = ecp_bench::scenarios::fig5_alt_hw(days, pairs_n, nodes_n, peak, seed);
    let report_alt = run_scenario(&alt).expect("fig5 alt-hw scenario runs");

    let power: Vec<f64> = report
        .power_series
        .as_deref()
        .expect("power series selected")
        .iter()
        .map(|&(_, f)| f)
        .collect();
    let power_alt: Vec<f64> = report_alt
        .power_series
        .as_deref()
        .unwrap()
        .iter()
        .map(|&(_, f)| f)
        .collect();

    let per_day = (86_400.0 / detail.interval_s) as usize;
    let daily: Vec<f64> = power
        .chunks(per_day)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let rows: Vec<Vec<String>> = daily
        .iter()
        .enumerate()
        .map(|(d, f)| {
            let alt_mean = power_alt[d * per_day..((d + 1) * per_day).min(power_alt.len())]
                .iter()
                .sum::<f64>()
                / per_day as f64;
            vec![
                format!("day {}", d + 1),
                format!("{:.1}%", 100.0 * ospf_frac),
                format!("{:.1}%", 100.0 * f),
                format!("{:.1}%", 100.0 * alt_mean),
            ]
        })
        .collect();
    print_table(
        "Fig 5: power (% of original) over the GEANT-like replay",
        &["", "ospf", "REsPoNse", "REsPoNse (alt HW)"],
        &rows,
    );

    let mean = report.mean_power_frac;
    let mean_alt = report_alt.mean_power_frac;
    let savings_today = 100.0 * (ospf_frac - mean) / ospf_frac;
    let savings_alt = 100.0 * (ospf_frac - mean_alt) / ospf_frac;
    let var = power.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / power.len().max(1) as f64;
    let congested = report.congested_fraction.unwrap_or(0.0);
    println!("\npaper: ~30% savings today, ~42% with alternative HW; power varies little; 0 recomputations");
    println!(
        "measured: savings {savings_today:.1}% (today), {savings_alt:.1}% (alt HW); power stddev {:.2}pp; congested intervals {:.2}%",
        100.0 * var.sqrt(),
        100.0 * congested
    );

    write_json(
        "fig5_geant_replay",
        &Out {
            days,
            pairs: pairs_n,
            ospf_power_frac: ospf_frac,
            response_mean_frac: mean,
            response_alt_hw_mean_frac: mean_alt,
            savings_today_pct: savings_today,
            savings_alt_hw_pct: savings_alt,
            congested_fraction: congested,
            power_stddev: var.sqrt(),
            daily_mean_frac: daily,
        },
    );
}
