//! Figure 5 — REsPoNse power over a 15-day GÉANT traffic replay.
//!
//! Paper: "energy savings are around 30% and 42% (for representative
//! hardware today and a future alternative, respectively) [...] the
//! power consumption varies little with large changes in traffic demand
//! [...] there was no need to recompute the on-demand paths — a single
//! computation [...] was sufficient for the 15-day period."
//!
//! Usage: `--days 15 --pairs 150 --nodes 17 --seed 1 --peak-frac 1.15`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::{ospf_invcap, OracleConfig};
use ecp_topo::gen::geant;
use ecp_traffic::{geant_like_trace, random_od_pairs_subset};
use respons_core::{steady_state_replay, Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    pairs: usize,
    ospf_power_frac: f64,
    response_mean_frac: f64,
    response_alt_hw_mean_frac: f64,
    savings_today_pct: f64,
    savings_alt_hw_pct: f64,
    congested_fraction: f64,
    power_stddev: f64,
    daily_mean_frac: Vec<f64>,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);
    // Diurnal peak relative to the always-on tables' capacity: slightly
    // above 1.0 so daytime peaks occasionally wake on-demand paths —
    // the paper's "low to medium level of traffic" regime (GÉANT was
    // heavily overprovisioned; its TOTEM volumes sat far below link
    // capacity).
    let peak_vs_always_on: f64 = arg("peak-frac", 1.15);

    let nodes_n: usize = arg("nodes", 19);
    let topo = geant();
    // Random subset of PoPs as origins/destinations (paper methodology);
    // the remaining PoPs are pure transit and may sleep entirely.
    let pairs = random_od_pairs_subset(&topo, nodes_n, pairs_n, seed);
    let _oc = OracleConfig::default();
    let te = TeConfig::default();

    // OSPF-InvCap baseline: a conventional network has no sleeping
    // capability at all — every chassis and line card stays powered, so
    // its draw is the full "original power" (the paper's flat ~100%
    // OSPF curve). We still compute the routing to verify coverage.
    let pm = PowerModel::cisco12000();
    let ospf = ospf_invcap(&topo, &pairs, None);
    assert!(ospf.covers(&ecp_traffic::gravity_matrix(&topo, &pairs, 1.0)));
    let ospf_frac = 1.0;

    // REsPoNse with today's hardware: plan once, replay 15 days.
    eprintln!("planning REsPoNse tables once (cisco12000)...");
    let tables = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);

    // Scale the trace to the installed capacity (see header comment).
    let base = ecp_traffic::gravity_matrix(&topo, &pairs, 1e9);
    let aon_scale = respons_core::replay::max_supported_scale(&topo, &tables, &base, &te, 1);
    let all_scale = respons_core::replay::max_supported_scale(&topo, &tables, &base, &te, 3);
    let peak = (1e9 * aon_scale * peak_vs_always_on).min(1e9 * all_scale * 0.95);
    eprintln!(
        "always-on capacity {:.2} Gbps, all-tables {:.2} Gbps, trace peak {:.2} Gbps",
        aon_scale,
        all_scale,
        peak / 1e9
    );
    let trace = geant_like_trace(&topo, &pairs, days, peak, seed);
    eprintln!("replaying {} intervals...", trace.len());
    let rep = steady_state_replay(&topo, &pm, &tables, &trace, &te);

    // Alternative hardware: chassis/10; plan with its own model.
    let pm_alt = PowerModel::alternative_hw();
    let tables_alt = Planner::new(&topo, &pm_alt).plan_pairs(&PlannerConfig::default(), &pairs);
    let rep_alt = steady_state_replay(&topo, &pm_alt, &tables_alt, &trace, &te);

    let per_day = (86_400.0 / trace.interval_s) as usize;
    let daily: Vec<f64> = rep
        .points
        .chunks(per_day)
        .map(|c| c.iter().map(|p| p.power_frac).sum::<f64>() / c.len() as f64)
        .collect();
    let rows: Vec<Vec<String>> = daily
        .iter()
        .enumerate()
        .map(|(d, f)| {
            let alt = rep_alt.points[d * per_day..((d + 1) * per_day).min(rep_alt.points.len())]
                .iter()
                .map(|p| p.power_frac)
                .sum::<f64>()
                / per_day as f64;
            vec![
                format!("day {}", d + 1),
                format!("{:.1}%", 100.0 * ospf_frac),
                format!("{:.1}%", 100.0 * f),
                format!("{:.1}%", 100.0 * alt),
            ]
        })
        .collect();
    print_table(
        "Fig 5: power (% of original) over the GEANT-like replay",
        &["", "ospf", "REsPoNse", "REsPoNse (alt HW)"],
        &rows,
    );

    let mean = rep.mean_power_fraction();
    let mean_alt = rep_alt.mean_power_fraction();
    let savings_today = 100.0 * (ospf_frac - mean) / ospf_frac;
    let savings_alt = 100.0 * (ospf_frac - mean_alt) / ospf_frac;
    let var = rep
        .points
        .iter()
        .map(|p| (p.power_frac - mean).powi(2))
        .sum::<f64>()
        / rep.points.len().max(1) as f64;
    println!("\npaper: ~30% savings today, ~42% with alternative HW; power varies little; 0 recomputations");
    println!(
        "measured: savings {savings_today:.1}% (today), {savings_alt:.1}% (alt HW); power stddev {:.2}pp; congested intervals {:.2}%",
        100.0 * var.sqrt(),
        100.0 * rep.congested_fraction()
    );

    write_json(
        "fig5_geant_replay",
        &Out {
            days,
            pairs: pairs_n,
            ospf_power_frac: ospf_frac,
            response_mean_frac: mean,
            response_alt_hw_mean_frac: mean_alt,
            savings_today_pct: savings_today,
            savings_alt_hw_pct: savings_alt,
            congested_fraction: rep.congested_fraction(),
            power_stddev: var.sqrt(),
            daily_mean_frac: daily,
        },
    );
}
