//! New scenario (inexpressible in the seed harness): **cascading
//! correlated link failures during a flash crowd**.
//!
//! A GÉANT-like ISP is cruising at 35 % load when a flash crowd ramps
//! demand to 95 % of the feasible maximum within 20 s. While the crowd
//! holds, a correlated cascade (a fiber-cut / power-domain incident)
//! takes down four links around a seed-chosen epicenter, one every 2 s,
//! each repaired 25 s after it failed. The question REsPoNse must
//! answer: do the pre-installed on-demand + failover tables absorb a
//! *simultaneous* demand surge and regional infrastructure loss, and
//! what does the recovery cost in power?
//!
//! Usage: `--duration 120 --fails 4 --seed 11`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;

fn main() {
    let duration: f64 = arg("duration", 120.0);
    let fails: usize = arg("fails", 4);
    let seed: u64 = arg("seed", 11);

    let scenario = ecp_bench::scenarios::cascade_flashcrowd(duration, fails, seed);

    let report = run_scenario(&scenario).expect("cascade scenario runs");

    let delivered = report.delivered_series.as_deref().unwrap_or_default();
    let power = report.power_series.as_deref().unwrap_or_default();
    let rows: Vec<Vec<String>> = delivered
        .iter()
        .zip(power)
        .step_by((delivered.len() / 20).max(1))
        .map(|(&(t, off, del), &(_, pf))| {
            vec![
                format!("{t:.0}"),
                format!("{:.0}", off / 1e6),
                format!("{:.0}", del / 1e6),
                format!("{:.0}%", 100.0 * del / off.max(1.0)),
                format!("{:.1}%", 100.0 * pf),
            ]
        })
        .collect();
    print_table(
        "Cascading correlated failures during a flash crowd (GEANT)",
        &[
            "t (s)",
            "offered (Mbps)",
            "delivered (Mbps)",
            "served",
            "power",
        ],
        &rows,
    );
    println!(
        "\nmean power {:.1}% | delivered fraction {:.3} | max tracking lag {:.1} s",
        100.0 * report.mean_power_frac,
        report.mean_delivered_fraction,
        report.max_tracking_lag_s
    );
    println!("scenario TOML:\n{}", scenario.to_toml());

    write_json("scenario_cascade_flashcrowd", &report);
}
