//! Figure 8 — ns-2-style adaptation runs: (a) PoP-access ISP topology,
//! (b) FatTree datacenter.
//!
//! Paper (§5.3): demands change aggressively every 30 s; wake-up time is
//! 5 s. "Sending rates for each (O,D) pair quickly match the given
//! demands [...] only at t=90 s the rates were delayed by 5 s, which
//! corresponds to the time needed to wake up additional resources."
//! The datacenter run tracks even more closely (smaller RTT); on-demand
//! resources wake at t=30 s.
//!
//! Usage: `--steps 5`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_simnet::{FlowId, SimConfig, Simulation};
use ecp_topo::gen::{fat_tree, pop_access, FatTreeConfig, PopAccessConfig};
use ecp_topo::{NodeId, Topology};
use ecp_traffic::{fat_tree_far_pairs, gravity_matrix, sine_series, TrafficMatrix};
use respons_core::{PathTables, Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct RunOut {
    /// (t, offered Mbps, delivered Mbps, power fraction)
    series: Vec<(f64, f64, f64, f64)>,
    max_tracking_lag_s: f64,
}

#[derive(Serialize)]
struct Out {
    pop_access: RunOut,
    fat_tree: RunOut,
}

/// Run one adaptation experiment: step demands every 30 s per the given
/// per-step matrices.
fn run(topo: &Topology, pm: &PowerModel, tables: &PathTables, steps: &[TrafficMatrix]) -> RunOut {
    let cfg = SimConfig {
        te: TeConfig::default(),
        control_interval: 0.5,
        wake_time: 5.0, // "we set the wake-up time to 5 s"
        detect_delay: 0.5,
        sleep_after: 2.0,
        sample_interval: 0.5,
        te_start: 0.0,
    };
    let mut sim = Simulation::new(topo, pm, tables, cfg);
    // One flow per OD pair present in any step.
    let mut flows: Vec<((NodeId, NodeId), FlowId)> = Vec::new();
    for tm in steps {
        for d in tm.demands() {
            if !flows.iter().any(|((o, dd), _)| *o == d.origin && *dd == d.dst) {
                let f = sim.add_flow(tables, d.origin, d.dst, 0.0);
                flows.push(((d.origin, d.dst), f));
            }
        }
    }
    for (i, tm) in steps.iter().enumerate() {
        let t = i as f64 * 30.0;
        for ((o, d), f) in &flows {
            sim.schedule_demand(t, *f, tm.get(*o, *d));
        }
    }
    let t_end = steps.len() as f64 * 30.0;
    sim.run_until(t_end);

    let series: Vec<(f64, f64, f64, f64)> = sim
        .recorder()
        .samples()
        .iter()
        .map(|s| (s.t, s.offered_total / 1e6, s.delivered_total / 1e6, s.power_frac))
        .collect();
    // Tracking lag: longest time where delivered < 95% of offered.
    let mut lag: f64 = 0.0;
    let mut lag_start: Option<f64> = None;
    for &(t, off, del, _) in &series {
        if off > 0.0 && del < 0.95 * off {
            lag_start.get_or_insert(t);
        } else if let Some(s) = lag_start.take() {
            lag = lag.max(t - s);
        }
    }
    RunOut { series, max_tracking_lag_s: lag }
}

fn main() {
    let steps_n: usize = arg("steps", 5);

    // ---- (a) PoP-access ISP -------------------------------------------
    let topo = pop_access(&PopAccessConfig::default());
    let pm = PowerModel::cisco12000();
    let metros = topo.edge_nodes();
    // Two concurrent far flows per metro so that util-100 exceeds what a
    // single (always-on) metro uplink can carry, forcing on-demand
    // wake-ups at the 50->100 transitions.
    let mut pairs = Vec::new();
    for i in 0..metros.len() {
        pairs.push((metros[i], metros[(i + metros.len() / 2) % metros.len()]));
        pairs.push((metros[i], metros[(i + metros.len() / 3) % metros.len()]));
    }
    let oc = ecp_routing::OracleConfig::default();
    let vmax = ecp_bench::max_feasible_volume(&topo, &pairs, &oc);
    // util-50 <-> util-100 alternation (the figure's y-axis labels).
    let steps_a: Vec<TrafficMatrix> = (0..steps_n)
        .map(|i| {
            let frac = if i % 2 == 0 { 0.5 } else { 1.0 };
            gravity_matrix(&topo, &pairs, vmax * frac * 0.9)
        })
        .collect();
    eprintln!("planning PoP-access tables...");
    let tables = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
    eprintln!("running PoP-access adaptation...");
    let run_a = run(&topo, &pm, &tables, &steps_a);

    // ---- (b) FatTree ----------------------------------------------------
    let (ft, ix) = fat_tree(&FatTreeConfig::default());
    let pm_dc = PowerModel::commodity_dc();
    let far = fat_tree_far_pairs(&ix);
    let sine = sine_series(steps_n, steps_n.max(2), 0.1e9, 0.9e9);
    let steps_b: Vec<TrafficMatrix> =
        sine.iter().map(|&v| ecp_traffic::uniform_matrix(&far, v)).collect();
    eprintln!("planning fat-tree tables...");
    let tables_b = Planner::new(&ft, &pm_dc).plan_pairs(&PlannerConfig::default(), &far);
    eprintln!("running fat-tree adaptation...");
    let run_b = run(&ft, &pm_dc, &tables_b, &steps_b);

    for (name, r) in [("8a PoP-access", &run_a), ("8b FatTree", &run_b)] {
        let rows: Vec<Vec<String>> = r
            .series
            .iter()
            .step_by((r.series.len() / 15).max(1))
            .map(|&(t, off, del, pf)| {
                vec![
                    format!("{t:.0}"),
                    format!("{off:.0}"),
                    format!("{del:.0}"),
                    format!("{:.1}%", 100.0 * pf),
                ]
            })
            .collect();
        print_table(
            &format!("Fig {name}: demand vs sending rate vs power"),
            &["t (s)", "demand (Mbps)", "sending (Mbps)", "power"],
            &rows,
        );
        println!("max tracking lag: {:.1} s (wake-up bound: ~5 s + control rounds)", r.max_tracking_lag_s);
    }
    println!("\npaper: rates match demand within a few RTTs; 5 s stalls only when waking resources");

    write_json("fig8_adaptation", &Out { pop_access: run_a, fat_tree: run_b });
}
