//! Figure 8 — ns-2-style adaptation runs: (a) PoP-access ISP topology,
//! (b) FatTree datacenter.
//!
//! Paper (§5.3): demands change aggressively every 30 s; wake-up time is
//! 5 s. "Sending rates for each (O,D) pair quickly match the given
//! demands [...] only at t=90 s the rates were delayed by 5 s, which
//! corresponds to the time needed to wake up additional resources."
//! The datacenter run tracks even more closely (smaller RTT); on-demand
//! resources wake at t=30 s.
//!
//! Ported to the declarative scenario engine: each sub-figure is one
//! `ecp_scenario::Scenario`; this binary only formats output.
//!
//! Usage: `--steps 5`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{
    run_scenario, MatrixSpec, MetricsSpec, PairsSpec, PowerSpec, ScaleSpec, Scenario,
    ScenarioBuilder, SimSpec,
};
use ecp_topo::gen::TopoSpec;
use ecp_traffic::{Program, Shape};
use serde::Serialize;

#[derive(Serialize)]
struct RunOut {
    /// (t, offered Mbps, delivered Mbps, power fraction)
    series: Vec<(f64, f64, f64, f64)>,
    max_tracking_lag_s: f64,
}

#[derive(Serialize)]
struct Out {
    pop_access: RunOut,
    fat_tree: RunOut,
}

/// The ns-2 experiment simulator settings shared by both runs.
fn ns2_sim() -> SimSpec {
    SimSpec {
        control_interval_s: 0.5,
        wake_time_s: 5.0, // "we set the wake-up time to 5 s"
        detect_delay_s: 0.5,
        sleep_after_s: 2.0,
        sample_interval_s: 0.5,
        te_start_s: 0.0,
        ..Default::default()
    }
}

/// Run one scenario and convert its report into the figure's series.
fn run(scenario: &Scenario) -> RunOut {
    let report = run_scenario(scenario).expect("fig8 scenario runs");
    let power = report.power_series.as_deref().unwrap_or_default();
    let delivered = report.delivered_series.as_deref().unwrap_or_default();
    let series: Vec<(f64, f64, f64, f64)> = delivered
        .iter()
        .zip(power)
        .map(|(&(t, off, del), &(_, pf))| (t, off / 1e6, del / 1e6, pf))
        .collect();
    RunOut {
        series,
        max_tracking_lag_s: report.max_tracking_lag_s,
    }
}

fn main() {
    let steps_n: usize = arg("steps", 5);
    let t_end = steps_n as f64 * 30.0;

    // ---- (a) PoP-access ISP -------------------------------------------
    // Two concurrent far flows per metro so that util-100 exceeds what a
    // single (always-on) metro uplink can carry, forcing on-demand
    // wake-ups at the 50->100 transitions.
    let scenario_a = ScenarioBuilder::new("fig8a-pop-access")
        .seed(1)
        .duration_s(t_end)
        .topology(TopoSpec::pop_access_default())
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::EdgeOffset {
            denominators: vec![2, 3],
        })
        // util-50 <-> util-100 alternation (the figure's y-axis labels).
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 0.9 },
            Program::from_shape(
                t_end,
                30.0,
                Shape::Steps {
                    levels: vec![0.5, 1.0],
                    step_s: 30.0,
                },
            ),
        )
        .sim(ns2_sim())
        .metrics(MetricsSpec {
            power_series: true,
            delivered_series: true,
            per_path_rates: false,
        })
        .build();
    eprintln!("running PoP-access adaptation scenario...");
    let run_a = run(&scenario_a);

    // ---- (b) FatTree ----------------------------------------------------
    let scenario_b = ScenarioBuilder::new("fig8b-fat-tree")
        .seed(1)
        .duration_s(t_end)
        .topology(TopoSpec::FatTree { k: 4 })
        .power(PowerSpec::CommodityDc)
        .pairs(PairsSpec::FatTreeFar)
        // Per-flow sine in [0.1, 0.9] Gbps sampled every 30 s.
        .traffic(
            MatrixSpec::Uniform,
            ScaleSpec::PerFlowBps { bps: 1.0 },
            Program::from_shape(
                t_end,
                30.0,
                Shape::Sine {
                    period_s: steps_n.max(2) as f64 * 30.0,
                    lo: 0.1e9,
                    hi: 0.9e9,
                },
            ),
        )
        .sim(ns2_sim())
        .metrics(MetricsSpec {
            power_series: true,
            delivered_series: true,
            per_path_rates: false,
        })
        .build();
    eprintln!("running fat-tree adaptation scenario...");
    let run_b = run(&scenario_b);

    for (name, r) in [("8a PoP-access", &run_a), ("8b FatTree", &run_b)] {
        let rows: Vec<Vec<String>> = r
            .series
            .iter()
            .step_by((r.series.len() / 15).max(1))
            .map(|&(t, off, del, pf)| {
                vec![
                    format!("{t:.0}"),
                    format!("{off:.0}"),
                    format!("{del:.0}"),
                    format!("{:.1}%", 100.0 * pf),
                ]
            })
            .collect();
        print_table(
            &format!("Fig {name}: demand vs sending rate vs power"),
            &["t (s)", "demand (Mbps)", "sending (Mbps)", "power"],
            &rows,
        );
        println!(
            "max tracking lag: {:.1} s (wake-up bound: ~5 s + control rounds)",
            r.max_tracking_lag_s
        );
    }
    println!(
        "\npaper: rates match demand within a few RTTs; 5 s stalls only when waking resources"
    );

    write_json(
        "fig8_adaptation",
        &Out {
            pop_access: run_a,
            fat_tree: run_b,
        },
    );
}
