//! Figure 8 — ns-2-style adaptation runs: (a) PoP-access ISP topology,
//! (b) FatTree datacenter.
//!
//! Paper (§5.3): demands change aggressively every 30 s; wake-up time is
//! 5 s. "Sending rates for each (O,D) pair quickly match the given
//! demands [...] only at t=90 s the rates were delayed by 5 s, which
//! corresponds to the time needed to wake up additional resources."
//! The datacenter run tracks even more closely (smaller RTT); on-demand
//! resources wake at t=30 s.
//!
//! Ported to the declarative scenario engine: each sub-figure is one
//! `ecp_scenario::Scenario`; this binary only formats output.
//!
//! Usage: `--steps 5`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{run_scenario, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct RunOut {
    /// (t, offered Mbps, delivered Mbps, power fraction)
    series: Vec<(f64, f64, f64, f64)>,
    max_tracking_lag_s: f64,
}

#[derive(Serialize)]
struct Out {
    pop_access: RunOut,
    fat_tree: RunOut,
}

/// Run one scenario and convert its report into the figure's series.
fn run(scenario: &Scenario) -> RunOut {
    let report = run_scenario(scenario).expect("fig8 scenario runs");
    let power = report.power_series.as_deref().unwrap_or_default();
    let delivered = report.delivered_series.as_deref().unwrap_or_default();
    let series: Vec<(f64, f64, f64, f64)> = delivered
        .iter()
        .zip(power)
        .map(|(&(t, off, del), &(_, pf))| (t, off / 1e6, del / 1e6, pf))
        .collect();
    RunOut {
        series,
        max_tracking_lag_s: report.max_tracking_lag_s,
    }
}

fn main() {
    let steps_n: usize = arg("steps", 5);

    // (a) PoP-access ISP: two concurrent far flows per metro so that
    // util-100 exceeds what a single (always-on) metro uplink can
    // carry, forcing on-demand wake-ups at the 50->100 transitions.
    eprintln!("running PoP-access adaptation scenario...");
    let run_a = run(&ecp_bench::scenarios::fig8a(steps_n));

    // (b) FatTree under a per-flow sine in [0.1, 0.9] Gbps.
    eprintln!("running fat-tree adaptation scenario...");
    let run_b = run(&ecp_bench::scenarios::fig8b(steps_n));

    for (name, r) in [("8a PoP-access", &run_a), ("8b FatTree", &run_b)] {
        let rows: Vec<Vec<String>> = r
            .series
            .iter()
            .step_by((r.series.len() / 15).max(1))
            .map(|&(t, off, del, pf)| {
                vec![
                    format!("{t:.0}"),
                    format!("{off:.0}"),
                    format!("{del:.0}"),
                    format!("{:.1}%", 100.0 * pf),
                ]
            })
            .collect();
        print_table(
            &format!("Fig {name}: demand vs sending rate vs power"),
            &["t (s)", "demand (Mbps)", "sending (Mbps)", "power"],
            &rows,
        );
        println!(
            "max tracking lag: {:.1} s (wake-up bound: ~5 s + control rounds)",
            r.max_tracking_lag_s
        );
    }
    println!(
        "\npaper: rates match demand within a few RTTs; 5 s stalls only when waking resources"
    );

    write_json(
        "fig8_adaptation",
        &Out {
            pop_access: run_a,
            fat_tree: run_b,
        },
    );
}
