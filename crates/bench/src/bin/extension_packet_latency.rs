//! Extension — packet-level view of the §5.4 latency results.
//!
//! The paper measured +5% block latency and +9% web latency when
//! consolidating traffic onto energy-critical paths. Two mechanisms
//! contribute: (a) longer paths (propagation + store-and-forward) and
//! (b) queueing on the busier consolidated links. The fluid simulator
//! captures only (a); this binary runs the same flows through the
//! event-per-packet engine to quantify (b) as well.
//!
//! Usage: `--util 0.6 --clients 4 --seed 1`

use ecp_apps::tables_from_routes;
use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::ospf_invcap;
use ecp_simnet::{run_packet_sim, CbrFlow, PacketSimConfig};
use ecp_topo::gen::abovenet;
use ecp_topo::{NodeId, Topology};
use respons_core::{PathTables, Planner, PlannerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct SchemeOut {
    mean_delay_ms: f64,
    p99_delay_ms: f64,
    queue_delay_ms: f64,
    dropped: usize,
}

#[derive(Serialize)]
struct Out {
    invcap: SchemeOut,
    response: SchemeOut,
    delay_increase_pct: f64,
}

fn run_scheme(
    topo: &Topology,
    tables: &PathTables,
    pairs: &[(NodeId, NodeId)],
    rate: f64,
) -> SchemeOut {
    let flows: Vec<CbrFlow> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(o, d))| CbrFlow {
            path: tables.get(o, d).unwrap().always_on.clone(),
            rate_bps: rate,
            start: i as f64 * 1e-4, // phase offsets avoid sync artifacts
            stop: 2.0,
        })
        .collect();
    let stats = run_packet_sim(topo, &flows, &PacketSimConfig::default(), 10.0);
    let n = stats.len() as f64;
    SchemeOut {
        mean_delay_ms: 1e3 * stats.iter().map(|s| s.mean_delay).sum::<f64>() / n,
        p99_delay_ms: 1e3 * stats.iter().map(|s| s.p99_delay).fold(0.0, f64::max),
        queue_delay_ms: 1e3 * stats.iter().map(|s| s.mean_queue_delay).sum::<f64>() / n,
        dropped: stats.iter().map(|s| s.dropped).sum(),
    }
}

fn main() {
    let util: f64 = arg("util", 0.6);
    let clients_n: usize = arg("clients", 4);
    let _seed: u64 = arg("seed", 1);

    let topo = abovenet();
    let pm = PowerModel::cisco12000();
    let mut by_degree: Vec<NodeId> = topo.node_ids().collect();
    by_degree.sort_by_key(|&n| topo.degree(n));
    let server = by_degree[0];
    let clients: Vec<NodeId> = by_degree[1..1 + clients_n].to_vec();
    let pairs: Vec<(NodeId, NodeId)> = clients.iter().map(|&c| (server, c)).collect();

    eprintln!("planning...");
    let t_rep = Planner::new(&topo, &pm).plan(&PlannerConfig::default());
    let t_inv = tables_from_routes(&ospf_invcap(&topo, &pairs, None));

    // Per-flow rate such that the server's busiest first-hop link runs
    // at ~`util` under consolidation.
    let min_cap = topo
        .out_arcs(server)
        .iter()
        .map(|&a| topo.arc(a).capacity)
        .fold(f64::INFINITY, f64::min);
    let rate = util * min_cap / clients_n as f64;

    eprintln!(
        "running packet simulations ({} flows at {:.1} Mbps)...",
        clients_n,
        rate / 1e6
    );
    let inv = run_scheme(&topo, &t_inv, &pairs, rate);
    let rep = run_scheme(&topo, &t_rep, &pairs, rate);

    let incr = 100.0 * (rep.mean_delay_ms - inv.mean_delay_ms) / inv.mean_delay_ms;
    print_table(
        "Packet-level retrieval delay: consolidated vs spread paths (Abovenet)",
        &["scheme", "mean (ms)", "p99 (ms)", "queueing (ms)", "drops"],
        &[
            vec![
                "OSPF-InvCap".into(),
                format!("{:.2}", inv.mean_delay_ms),
                format!("{:.2}", inv.p99_delay_ms),
                format!("{:.3}", inv.queue_delay_ms),
                inv.dropped.to_string(),
            ],
            vec![
                "REsPoNse".into(),
                format!("{:.2}", rep.mean_delay_ms),
                format!("{:.2}", rep.p99_delay_ms),
                format!("{:.3}", rep.queue_delay_ms),
                rep.dropped.to_string(),
            ],
        ],
    );
    println!("\npaper: +5% (blocks) / +9% (web) end-to-end latency under consolidation");
    println!("measured (packet level): {incr:+.1}% mean delay; queueing contributes {:.3} ms of the difference",
        rep.queue_delay_ms - inv.queue_delay_ms);

    write_json(
        "extension_packet_latency",
        &Out {
            invcap: inv,
            response: rep,
            delay_increase_pct: incr,
        },
    );
}
