//! Extension — packet-level view of the §5.4 latency results.
//!
//! The paper measured +5% block latency and +9% web latency when
//! consolidating traffic onto energy-critical paths. Two mechanisms
//! contribute: (a) longer paths (propagation + store-and-forward) and
//! (b) queueing on the busier consolidated links. The fluid simulator
//! captures only (a); the packet-engine scenarios run the same flows
//! through the event-per-packet engine to quantify (b) as well.
//!
//! Usage: `--util 0.6 --clients 4 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct SchemeOut {
    mean_delay_ms: f64,
    p99_delay_ms: f64,
    queue_delay_ms: f64,
    dropped: usize,
}

#[derive(Serialize)]
struct Out {
    invcap: SchemeOut,
    response: SchemeOut,
    delay_increase_pct: f64,
}

fn run_scheme(util: f64, clients: usize, invcap: bool) -> SchemeOut {
    let report = run_scenario(&ecp_bench::scenarios::extension_packet_latency(
        util, clients, invcap,
    ))
    .expect("extension_packet scenario runs");
    let p = report.packet.expect("packet detail");
    SchemeOut {
        mean_delay_ms: 1e3 * p.mean_delay_s,
        p99_delay_ms: 1e3 * p.max_p99_delay_s,
        queue_delay_ms: 1e3 * p.mean_queue_delay_s,
        dropped: p.dropped,
    }
}

fn main() {
    let util: f64 = arg("util", 0.6);
    let clients_n: usize = arg("clients", 4);
    let _seed: u64 = arg("seed", 1);

    eprintln!("running packet simulations ({clients_n} flows at {util} utilization)...");
    let inv = run_scheme(util, clients_n, true);
    let rep = run_scheme(util, clients_n, false);

    let incr = 100.0 * (rep.mean_delay_ms - inv.mean_delay_ms) / inv.mean_delay_ms;
    print_table(
        "Packet-level retrieval delay: consolidated vs spread paths (Abovenet)",
        &["scheme", "mean (ms)", "p99 (ms)", "queueing (ms)", "drops"],
        &[
            vec![
                "OSPF-InvCap".into(),
                format!("{:.2}", inv.mean_delay_ms),
                format!("{:.2}", inv.p99_delay_ms),
                format!("{:.3}", inv.queue_delay_ms),
                inv.dropped.to_string(),
            ],
            vec![
                "REsPoNse".into(),
                format!("{:.2}", rep.mean_delay_ms),
                format!("{:.2}", rep.p99_delay_ms),
                format!("{:.3}", rep.queue_delay_ms),
                rep.dropped.to_string(),
            ],
        ],
    );
    println!("\npaper: +5% (blocks) / +9% (web) end-to-end latency under consolidation");
    println!("measured (packet level): {incr:+.1}% mean delay; queueing contributes {:.3} ms of the difference",
        rep.queue_delay_ms - inv.queue_delay_ms);

    write_json(
        "extension_packet_latency",
        &Out {
            invcap: inv,
            response: rep,
            delay_increase_pct: incr,
        },
    );
}
