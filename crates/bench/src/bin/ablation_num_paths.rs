//! Ablation — number of energy-critical paths `N` per OD pair.
//!
//! Paper: 3 paths suffice for ISP topologies (GÉANT), ~5 for the highly
//! redundant FatTree (Fig. 2b); "if the routing memory is limited we can
//! deploy only the most important routing tables".
//!
//! We sweep `N` and report the supported volume and the idle power of
//! the always-on state (which `N` does not affect — a sanity check).
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_topo::gen::geant;
use ecp_traffic::{gravity_matrix, random_od_pairs};
use respons_core::replay::place_matrix;
use respons_core::{Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    num_paths: usize,
    placed_fraction_at_peak: f64,
    idle_power_frac: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let topo = geant();
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let te = TeConfig {
        threshold: 1.0,
        ..Default::default()
    };
    let full = pm.full_power(&topo);
    // Peak-hour demand at 85% of the free-routing max: extra tables only
    // matter when the always-on paths cannot absorb the load.
    let oc = ecp_routing::OracleConfig::default();
    let peak_tm = gravity_matrix(
        &topo,
        &pairs,
        ecp_bench::max_feasible_volume(&topo, &pairs, &oc) * 0.85,
    );

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for n in [2usize, 3, 4, 5] {
        eprintln!("planning with N = {n}...");
        let cfg = PlannerConfig {
            num_paths: n,
            ..Default::default()
        };
        let tables = Planner::new(&topo, &pm).plan_pairs(&cfg, &pairs);
        let (_, placed, _, _) = place_matrix(&topo, &tables, &peak_tm, &te);
        let idle = pm.network_power(&topo, &tables.always_on_active(&topo)) / full;
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", 100.0 * placed),
            format!("{:.1}%", 100.0 * idle),
        ]);
        out.push(Row {
            num_paths: n,
            placed_fraction_at_peak: placed,
            idle_power_frac: idle,
        });
    }
    print_table(
        "Ablation: number of energy-critical paths N (GEANT-like)",
        &["N", "peak traffic placed", "idle power"],
        &rows,
    );
    println!("\npaper: N=3 suffices on ISP topologies; extra paths add capacity, never idle power");
    let monotone = out
        .windows(2)
        .all(|w| w[1].placed_fraction_at_peak >= w[0].placed_fraction_at_peak - 0.01);
    println!(
        "measured: capacity monotone in N: {monotone}; idle power constant: {}",
        out.windows(2)
            .all(|w| (w[1].idle_power_frac - w[0].idle_power_frac).abs() < 1e-6)
    );

    write_json("ablation_num_paths", &out);
}
