//! Ablation — number of energy-critical paths `N` per OD pair.
//!
//! Paper: 3 paths suffice for ISP topologies (GÉANT), ~5 for the highly
//! redundant FatTree (Fig. 2b); "if the routing memory is limited we can
//! deploy only the most important routing tables".
//!
//! A `SweepRunner` grid over the `num_paths` axis of a single-interval
//! peak-hour replay (85% of the free-routing max) with `table_stats`;
//! this binary only formats output.
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{Axis, Param, SweepRunner};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    num_paths: usize,
    placed_fraction_at_peak: f64,
    idle_power_frac: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let base = ecp_bench::scenarios::ablation_base("ablation-num-paths", pairs_n, seed);
    let sweep = SweepRunner::new(base, vec![Axis::new(Param::NumPaths, [2.0, 3.0, 4.0, 5.0])]);
    eprintln!("sweeping N over the planner (parallel)...");
    let result = sweep.run().expect("num-paths sweep runs");

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for row in &result.rows {
        let n = row.params[0].1 as usize;
        let ts = row.report.table_stats.expect("table_stats selected");
        let placed = row.report.mean_delivered_fraction;
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", 100.0 * placed),
            format!("{:.1}%", 100.0 * ts.idle_power_frac),
        ]);
        out.push(Row {
            num_paths: n,
            placed_fraction_at_peak: placed,
            idle_power_frac: ts.idle_power_frac,
        });
    }
    print_table(
        "Ablation: number of energy-critical paths N (GEANT-like)",
        &["N", "peak traffic placed", "idle power"],
        &rows,
    );
    println!("\npaper: N=3 suffices on ISP topologies; extra paths add capacity, never idle power");
    let monotone = out
        .windows(2)
        .all(|w| w[1].placed_fraction_at_peak >= w[0].placed_fraction_at_peak - 0.01);
    println!(
        "measured: capacity monotone in N: {monotone}; idle power constant: {}",
        out.windows(2)
            .all(|w| (w[1].idle_power_frac - w[0].idle_power_frac).abs() < 1e-6)
    );

    write_json("ablation_num_paths", &out);
}
