//! Figure 4 — power consumption for sinusoidal traffic in a k=4
//! fat-tree datacenter.
//!
//! Paper: ECMP stays at ~100% of original power regardless of load;
//! REsPoNse tracks the sine wave, with the *near* (intra-pod) traffic
//! matrix cheaper than the *far* (cross-core) one; REsPoNse matches
//! ElasticTree's formal solution (their points coincide).
//!
//! Two `Program`-trace replay scenarios (near/far); the far one carries
//! the ECMP, ElasticTree, and optimal baselines. This binary only
//! formats output.
//!
//! Usage: `--steps 40 --k 4`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    steps: usize,
    ecmp_power_frac: f64,
    near_series: Vec<f64>,
    far_series: Vec<f64>,
    elastictree_series: Vec<f64>,
    near_mean: f64,
    far_mean: f64,
    optimal_far_mean: f64,
}

fn power_series(report: &ecp_scenario::ScenarioReport) -> Vec<f64> {
    report
        .power_series
        .as_deref()
        .expect("power series selected")
        .iter()
        .map(|&(_, f)| f)
        .collect()
}

fn main() {
    let steps: usize = arg("steps", 40);
    let k: usize = arg("k", 4);

    let near = ecp_bench::scenarios::fig4(steps, k, false);
    let far = ecp_bench::scenarios::fig4(steps, k, true);
    let near_report = run_scenario(&near).expect("fig4 near runs");
    let far_report = run_scenario(&far).expect("fig4 far runs");

    let near_series = power_series(&near_report);
    let far_series = power_series(&far_report);
    let demand: Vec<f64> = (0..steps)
        .map(|i| far.traffic.program.level_at(i as f64))
        .collect();
    let compare = |name: &str| -> Vec<f64> {
        far_report
            .replay
            .as_ref()
            .expect("replay detail")
            .comparisons
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.series.clone())
            .expect("baseline computed")
    };
    let ecmp_frac = compare("ecmp")[0];
    let elastictree = compare("elastictree");
    let opt = compare("optimal_at_peak")[0];

    let rows: Vec<Vec<String>> = (0..steps)
        .step_by((steps / 10).max(1))
        .map(|i| {
            vec![
                format!("{i}"),
                format!("{:.0}%", 100.0 * demand[i] / 1e9),
                "100%".to_string(),
                format!("{:.1}%", 100.0 * far_series[i]),
                format!("{:.1}%", 100.0 * near_series[i]),
                format!("{:.1}%", 100.0 * elastictree[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 4: power vs time, k=4 fat-tree, sinusoidal demand",
        &[
            "t",
            "demand (% of 1G)",
            "ecmp",
            "REsPoNse(far)",
            "REsPoNse(near)",
            "ElasticTree(far)",
        ],
        &rows,
    );
    let near_mean = near_series.iter().sum::<f64>() / steps as f64;
    let far_mean = far_series.iter().sum::<f64>() / steps as f64;
    println!("\npaper: ECMP flat ~100%; REsPoNse(near) < REsPoNse(far) < 100%; REsPoNse == ElasticTree optimal");
    let et_mean = elastictree.iter().sum::<f64>() / steps as f64;
    println!(
        "measured: ecmp {:.0}%, far mean {:.1}% vs ElasticTree {:.1}%, near mean {:.1}%, optimal(far,peak) {:.1}% vs REsPoNse(far,peak) {:.1}%",
        100.0 * ecmp_frac,
        100.0 * far_mean,
        100.0 * et_mean,
        100.0 * near_mean,
        100.0 * opt,
        100.0 * far_series[steps / 2]
    );

    write_json(
        "fig4_fattree_sine",
        &Out {
            steps,
            ecmp_power_frac: ecmp_frac,
            near_series,
            far_series,
            elastictree_series: elastictree,
            near_mean,
            far_mean,
            optimal_far_mean: opt,
        },
    );
}
