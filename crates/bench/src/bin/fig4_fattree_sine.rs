//! Figure 4 — power consumption for sinusoidal traffic in a k=4
//! fat-tree datacenter.
//!
//! Paper: ECMP stays at ~100% of original power regardless of load;
//! REsPoNse tracks the sine wave, with the *near* (intra-pod) traffic
//! matrix cheaper than the *far* (cross-core) one; REsPoNse matches
//! ElasticTree's formal solution (their points coincide).
//!
//! Usage: `--steps 40 --k 4`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_topo::gen::{fat_tree, FatTreeConfig};
use ecp_traffic::{fat_tree_far_pairs, fat_tree_near_pairs, sine_series, uniform_matrix, Trace};
use respons_core::{steady_state_replay, Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    steps: usize,
    ecmp_power_frac: f64,
    near_series: Vec<f64>,
    far_series: Vec<f64>,
    elastictree_series: Vec<f64>,
    near_mean: f64,
    far_mean: f64,
    optimal_far_mean: f64,
}

fn main() {
    let steps: usize = arg("steps", 40);
    let k: usize = arg("k", 4);

    let (topo, ix) = fat_tree(&FatTreeConfig {
        k,
        ..Default::default()
    });
    let pm = PowerModel::commodity_dc();
    let near = fat_tree_near_pairs(&ix);
    let far = fat_tree_far_pairs(&ix);
    // Sine demand in [0, 1 Gbps] per flow, like ElasticTree's experiment
    // (0.9 cap keeps the peak strictly feasible per link).
    let demand = sine_series(steps, steps, 0.02e9, 0.9e9);

    let te = TeConfig::default();
    let mut series = Vec::new();
    for (name, pairs) in [("near", &near), ("far", &far)] {
        // Datacenter configuration: demand-aware on-demand tables against
        // the sine peak (matching ElasticTree's formal solution) and the
        // 5 energy-critical paths Fig. 2b prescribes for fat-trees.
        let cfg = PlannerConfig {
            num_paths: 5,
            strategy: respons_core::OnDemandStrategy::PeakMatrix(uniform_matrix(pairs, 0.9e9)),
            ..Default::default()
        };
        let tables = Planner::new(&topo, &pm).plan_pairs(&cfg, pairs);
        let trace = Trace {
            name: name.to_string(),
            interval_s: 1.0,
            matrices: demand.iter().map(|&v| uniform_matrix(pairs, v)).collect(),
        };
        let rep = steady_state_replay(&topo, &pm, &tables, &trace, &te);
        series.push((name, rep));
    }

    // ECMP baseline: every equal-cost path in use -> the whole fabric
    // stays on.
    let ecmp = ecp_routing::ecmp_routes(&topo, &far, 16);
    let ecmp_frac = ecp_power::power_fraction(&pm, &topo, &ecmp.active_set(&topo));

    // ElasticTree baseline: its topology-aware optimizer recomputed at
    // every step of the sine wave (that is what ElasticTree does at
    // runtime).
    let oc = ecp_routing::OracleConfig::default();
    let elastictree: Vec<f64> = demand
        .iter()
        .map(|&v| {
            let tm = uniform_matrix(&far, v);
            ecp_routing::elastictree_subset(&topo, &ix, &pm, &tm, &oc)
                .map(|r| r.power_w / pm.full_power(&topo))
                .unwrap_or(f64::NAN)
        })
        .collect();
    // "Optimal" reference at the far peak for the coincidence claim.
    let peak_tm = uniform_matrix(&far, 0.9e9);
    let opt = ecp_routing::optimal_subset(&topo, &pm, &peak_tm, &oc)
        .map(|r| r.power_w / pm.full_power(&topo))
        .unwrap_or(f64::NAN);

    let near_series: Vec<f64> = series[0].1.points.iter().map(|p| p.power_frac).collect();
    let far_series: Vec<f64> = series[1].1.points.iter().map(|p| p.power_frac).collect();
    let rows: Vec<Vec<String>> = (0..steps)
        .step_by((steps / 10).max(1))
        .map(|i| {
            vec![
                format!("{i}"),
                format!("{:.0}%", 100.0 * demand[i] / 1e9),
                "100%".to_string(),
                format!("{:.1}%", 100.0 * far_series[i]),
                format!("{:.1}%", 100.0 * near_series[i]),
                format!("{:.1}%", 100.0 * elastictree[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 4: power vs time, k=4 fat-tree, sinusoidal demand",
        &[
            "t",
            "demand (% of 1G)",
            "ecmp",
            "REsPoNse(far)",
            "REsPoNse(near)",
            "ElasticTree(far)",
        ],
        &rows,
    );
    let near_mean = near_series.iter().sum::<f64>() / steps as f64;
    let far_mean = far_series.iter().sum::<f64>() / steps as f64;
    println!("\npaper: ECMP flat ~100%; REsPoNse(near) < REsPoNse(far) < 100%; REsPoNse == ElasticTree optimal");
    let et_mean = elastictree.iter().sum::<f64>() / steps as f64;
    println!(
        "measured: ecmp {:.0}%, far mean {:.1}% vs ElasticTree {:.1}%, near mean {:.1}%, optimal(far,peak) {:.1}% vs REsPoNse(far,peak) {:.1}%",
        100.0 * ecmp_frac,
        100.0 * far_mean,
        100.0 * et_mean,
        100.0 * near_mean,
        100.0 * opt,
        100.0 * far_series[steps / 2]
    );

    write_json(
        "fig4_fattree_sine",
        &Out {
            steps,
            ecmp_power_frac: ecmp_frac,
            near_series,
            far_series,
            elastictree_series: elastictree.clone(),
            near_mean,
            far_mean,
            optimal_far_mean: opt,
        },
    );
}
