//! §4.1 in-text result — capacity of the always-on paths alone.
//!
//! Paper: "the always-on paths alone can accommodate about 50% of the
//! traffic volume that can be carried by the Cisco-recommended OSPF
//! paths."
//!
//! Two scenarios with the `table_capacity` probe (REsPoNse tables vs
//! OSPF-InvCap); this binary only formats output.
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    always_on_volume: f64,
    ospf_volume: f64,
    full_tables_volume: f64,
    always_on_over_ospf: f64,
}

fn capacity(pairs: usize, seed: u64, invcap: bool) -> ecp_scenario::CapacityStats {
    run_scenario(&ecp_bench::scenarios::text_alwayson(pairs, seed, invcap))
        .expect("text_alwayson scenario runs")
        .capacity
        .expect("table_capacity probe selected")
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    eprintln!("planning and scaling to capacity...");
    let rep = capacity(pairs_n, seed, false);
    let ospf = capacity(pairs_n, seed, true);

    let (aon, full, ospf_vol) = (rep.always_on_bps, rep.full_tables_bps, ospf.always_on_bps);
    let ratio = aon / ospf_vol;
    print_table(
        "Max supported volume at fixed gravity proportions (GEANT-like)",
        &["routing", "volume (Gbps)"],
        &[
            vec!["always-on only".into(), format!("{:.2}", aon / 1e9)],
            vec!["OSPF-InvCap".into(), format!("{:.2}", ospf_vol / 1e9)],
            vec!["all 3 REsPoNse tables".into(), format!("{:.2}", full / 1e9)],
        ],
    );
    println!(
        "\npaper: always-on alone carries ~50% of the OSPF-carriable volume   measured: {:.0}%",
        100.0 * ratio
    );

    write_json(
        "text_alwayson_capacity",
        &Out {
            always_on_volume: aon,
            ospf_volume: ospf_vol,
            full_tables_volume: full,
            always_on_over_ospf: ratio,
        },
    );
}
