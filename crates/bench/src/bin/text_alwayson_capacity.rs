//! §4.1 in-text result — capacity of the always-on paths alone.
//!
//! Paper: "the always-on paths alone can accommodate about 50% of the
//! traffic volume that can be carried by the Cisco-recommended OSPF
//! paths."
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_apps::tables_from_routes;
use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::ospf_invcap;
use ecp_topo::gen::geant;
use ecp_traffic::{gravity_matrix, random_od_pairs};
use respons_core::replay::max_supported_scale;
use respons_core::{Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    always_on_volume: f64,
    ospf_volume: f64,
    full_tables_volume: f64,
    always_on_over_ospf: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let topo = geant();
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let base = gravity_matrix(&topo, &pairs, 1e9);
    let te = TeConfig {
        threshold: 1.0,
        ..Default::default()
    };

    eprintln!("planning...");
    let tables = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
    let ospf_tables = tables_from_routes(&ospf_invcap(&topo, &pairs, None));

    eprintln!("scaling to capacity...");
    let aon = max_supported_scale(&topo, &tables, &base, &te, 1) * base.total();
    let full = max_supported_scale(&topo, &tables, &base, &te, 3) * base.total();
    let ospf = max_supported_scale(&topo, &ospf_tables, &base, &te, 1) * base.total();

    let ratio = aon / ospf;
    print_table(
        "Max supported volume at fixed gravity proportions (GEANT-like)",
        &["routing", "volume (Gbps)"],
        &[
            vec!["always-on only".into(), format!("{:.2}", aon / 1e9)],
            vec!["OSPF-InvCap".into(), format!("{:.2}", ospf / 1e9)],
            vec!["all 3 REsPoNse tables".into(), format!("{:.2}", full / 1e9)],
        ],
    );
    println!(
        "\npaper: always-on alone carries ~50% of the OSPF-carriable volume   measured: {:.0}%",
        100.0 * ratio
    );

    write_json(
        "text_alwayson_capacity",
        &Out {
            always_on_volume: aon,
            ospf_volume: ospf,
            full_tables_volume: full,
            always_on_over_ospf: ratio,
        },
    );
}
