//! TE control-loop stability comparison — the ROADMAP's TE-dynamics
//! experiment.
//!
//! Under sustained overload with coupled flows, the undamped
//! simultaneous-observation control rounds oscillate (spill →
//! collective re-aggregate → spill), which shows up as a
//! constant-fraction delivery shortfall and steady reconfiguration
//! churn. This binary runs the `te-stability-*` registry scenarios —
//! one per `ecp-control` policy — and prints the stability analyzer's
//! verdict for each against the undamped baseline.
//!
//! Usage: `--duration 150 --load 0.7`
//!
//! At the default load (70 % of the maximum feasible volume — well
//! above what the always-on paths alone carry, with on-demand headroom
//! to spare) the undamped loop exhibits the standing cycle; deeper
//! overloads pin every path and hide it.

use ecp_bench::{arg, pct, print_table, write_json};
use ecp_control::StabilityReport;
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct PolicyOut {
    policy: String,
    mean_delivered_fraction: f64,
    mean_power_frac: f64,
    max_tracking_lag_s: f64,
    stability: StabilityReport,
}

#[derive(Serialize)]
struct Out {
    duration_s: f64,
    load: f64,
    policies: Vec<PolicyOut>,
}

fn main() {
    let duration: f64 = arg("duration", 150.0);
    let load: f64 = arg("load", 0.7);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut out = Vec::new();
    for (_, control) in ecp_bench::scenarios::te_stability_policies() {
        let label = control.label();
        let scenario = ecp_bench::scenarios::te_stability(duration, load, control);
        let report = run_scenario(&scenario).expect("stability scenario runs");
        let st = report
            .stability
            .clone()
            .expect("stability analysis attached");
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", report.mean_delivered_fraction),
            pct(st.shortfall_fraction),
            format!("{:.3}", st.oscillations_per_s),
            st.dominant_period_s
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".into()),
            st.settling_time_s
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "-".into()),
            format!("{}", st.churn_moves),
            pct(report.mean_power_frac),
        ]);
        out.push(PolicyOut {
            policy: label.to_string(),
            mean_delivered_fraction: report.mean_delivered_fraction,
            mean_power_frac: report.mean_power_frac,
            max_tracking_lag_s: report.max_tracking_lag_s,
            stability: st,
        });
    }

    print_table(
        &format!("TE stability under sustained overload (load {load}, {duration} s)"),
        &[
            "policy",
            "delivered",
            "shortfall",
            "osc/s",
            "period (s)",
            "settle (s)",
            "moves",
            "power",
        ],
        &rows,
    );
    println!(
        "\nundamped = the paper's REsPoNseTE; damped variants trade a little adaptation\n\
         speed for shortfall recovery (see examples/campaign_te_damping.toml for the A/B)"
    );

    write_json(
        "te_stability",
        &Out {
            duration_s: duration,
            load,
            policies: out,
        },
    );
}
