//! §4.5 in-text analysis — provisioning power and cooling for typical
//! load.
//!
//! Paper: "Our trace analysis reveals that the average peak duration is
//! less than 2 hours long, implying that alternative power sources can
//! supply necessary power during these periods. Moreover, existing
//! thermodynamic models can estimate how long the peak utilization can
//! be accommodated without extra cooling."
//!
//! The replay scenario exposes the trace volume series (peak durations)
//! and the Watt series (thermal budget); this binary runs the lumped-
//! capacitance model over them and formats output.
//!
//! Usage: `--days 15 --pairs 150 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::ThermalModel;
use ecp_scenario::run_scenario;
use ecp_traffic::peak_durations;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    mean_peak_duration_h: f64,
    max_peak_duration_h: f64,
    peaks: usize,
    typical_power_w: f64,
    peak_power_w: f64,
    thermal_budget_at_peak_h: f64,
    temperature_limit_exceeded: bool,
    peak_temperature_c: f64,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);

    eprintln!("planning and replaying...");
    let report = run_scenario(&ecp_bench::scenarios::text_peak(days, pairs_n, seed))
        .expect("text_peak scenario runs");
    let detail = report.replay.expect("replay detail");
    let volume = detail.volume_series.expect("volume series selected");
    let power_series = detail.power_w_series.expect("power series selected");

    // (1) Peak durations — the paper's *trace analysis*: excursions of
    // the offered traffic volume above 90% of its maximum.
    let vmax = volume.iter().cloned().fold(0.0, f64::max);
    let peaks = peak_durations(&volume, detail.interval_s, 0.9 * vmax);
    let mean_h = peaks.iter().sum::<f64>() / peaks.len().max(1) as f64 / 3600.0;
    let max_h = peaks.iter().cloned().fold(0.0, f64::max) / 3600.0;

    let mut sorted = power_series.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let typical = sorted[sorted.len() / 2];
    let peak_power = sorted[sorted.len() - 1];

    // (2) Thermal budget: cooling sized for the typical draw with a 3 °C
    // steady margin below a 35 °C chiller-less limit; tau = 45 min of
    // thermal mass.
    let mut thermal = ThermalModel::provisioned_for(typical, 25.0, 35.0, 3.0, 1.0);
    thermal.heat_capacity_j_per_c = thermal.cooling_w_per_c * 2700.0;
    let start = thermal.steady_temp(typical);
    let budget_h = thermal.time_to_limit(start, peak_power) / 3600.0;
    let series: Vec<(f64, f64)> = power_series
        .iter()
        .map(|&p| (detail.interval_s, p))
        .collect();
    let (peak_temp, violated) = thermal.simulate(start, &series);

    print_table(
        "Peak provisioning analysis (GEANT-like replay, REsPoNse tables)",
        &["metric", "value"],
        &[
            vec![
                "traffic peaks (>90% of max)".into(),
                peaks.len().to_string(),
            ],
            vec!["mean peak duration".into(), format!("{mean_h:.2} h")],
            vec!["max peak duration".into(), format!("{max_h:.2} h")],
            vec![
                "typical (median) power".into(),
                format!("{:.1} kW", typical / 1e3),
            ],
            vec![
                "highest power".into(),
                format!("{:.1} kW", peak_power / 1e3),
            ],
            vec![
                "thermal budget at highest power".into(),
                if budget_h.is_finite() {
                    format!("{budget_h:.2} h")
                } else {
                    "unlimited".into()
                },
            ],
            vec![
                "peak temperature over replay".into(),
                format!("{peak_temp:.1} C"),
            ],
            vec!["limit exceeded".into(), violated.to_string()],
        ],
    );
    println!("\npaper: average peak duration < 2 h; peaks fit without extra cooling");
    println!(
        "measured: mean peak {mean_h:.2} h (< 2 h: {}), temperature limit exceeded: {violated}",
        mean_h < 2.0
    );

    write_json(
        "text_peak_provisioning",
        &Out {
            mean_peak_duration_h: mean_h,
            max_peak_duration_h: max_h,
            peaks: peaks.len(),
            typical_power_w: typical,
            peak_power_w: peak_power,
            thermal_budget_at_peak_h: budget_h,
            temperature_limit_exceeded: violated,
            peak_temperature_c: peak_temp,
        },
    );
}
