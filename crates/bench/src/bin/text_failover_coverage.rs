//! §4.3 in-text analysis — single-link-failure coverage of the
//! installed tables.
//!
//! Paper: "We have opted for a single failover path per (O,D) pair
//! because our analysis revealed that even a single path can deal with
//! vast majority of failures, without causing any disconnectivity in
//! the network."
//!
//! Usage: `--pairs 150 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_topo::gen::{abovenet, geant, genuity};
use ecp_topo::Topology;
use ecp_traffic::random_od_pairs;
use respons_core::{single_link_failure_coverage, Planner, PlannerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    coverage: f64,
    pairs_fully_protected: f64,
    critical_links: usize,
}

fn analyze(topo: &Topology, pairs_n: usize, seed: u64) -> Row {
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs(topo, pairs_n, seed);
    let tables = Planner::new(topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
    let rep = single_link_failure_coverage(topo, &tables);
    Row {
        topology: topo.name().to_string(),
        coverage: rep.coverage(),
        pairs_fully_protected: rep.pairs_fully_protected,
        critical_links: rep.critical_links.len(),
    }
}

fn main() {
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for topo in [geant(), abovenet(), genuity()] {
        eprintln!("planning and sweeping failures on {}...", topo.name());
        let r = analyze(&topo, pairs_n, seed);
        rows.push(vec![
            r.topology.clone(),
            format!("{:.1}%", 100.0 * r.coverage),
            format!("{:.1}%", 100.0 * r.pairs_fully_protected),
            r.critical_links.to_string(),
        ]);
        out.push(r);
    }
    print_table(
        "Single-link-failure coverage of planner output (3 paths per pair)",
        &[
            "topology",
            "survivable (pair,link) combos",
            "fully protected pairs",
            "critical links",
        ],
        &rows,
    );
    println!("\npaper: a single failover path deals with the vast majority of failures");
    println!(
        "measured: {:.1}% average combo coverage across the three ISP maps",
        100.0 * out.iter().map(|r| r.coverage).sum::<f64>() / out.len() as f64
    );

    write_json("text_failover_coverage", &out);
}
