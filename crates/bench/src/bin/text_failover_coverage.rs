//! §4.3 in-text analysis — single-link-failure coverage of the
//! installed tables.
//!
//! Paper: "We have opted for a single failover path per (O,D) pair
//! because our analysis revealed that even a single path can deal with
//! vast majority of failures, without causing any disconnectivity in
//! the network."
//!
//! One scenario per ISP map with the `failover_coverage` sweep; this
//! binary only formats output.
//!
//! Usage: `--pairs 150 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use ecp_topo::gen::TopoSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    coverage: f64,
    pairs_fully_protected: f64,
    critical_links: usize,
}

fn main() {
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (name, spec) in [
        ("geant-like", TopoSpec::Geant),
        ("abovenet-like", TopoSpec::Abovenet),
        ("genuity-like", TopoSpec::Genuity),
    ] {
        eprintln!("planning and sweeping failures on {name}...");
        let report = run_scenario(&ecp_bench::scenarios::text_failover(spec, pairs_n, seed))
            .expect("text_failover scenario runs");
        let f = report.failover.expect("failover_coverage sweep selected");
        let r = Row {
            topology: name.to_string(),
            coverage: f.coverage,
            pairs_fully_protected: f.pairs_fully_protected,
            critical_links: f.critical_links,
        };
        rows.push(vec![
            r.topology.clone(),
            format!("{:.1}%", 100.0 * r.coverage),
            format!("{:.1}%", 100.0 * r.pairs_fully_protected),
            r.critical_links.to_string(),
        ]);
        out.push(r);
    }
    print_table(
        "Single-link-failure coverage of planner output (3 paths per pair)",
        &[
            "topology",
            "survivable (pair,link) combos",
            "fully protected pairs",
            "critical links",
        ],
        &rows,
    );
    println!("\npaper: a single failover path deals with the vast majority of failures");
    println!(
        "measured: {:.1}% average combo coverage across the three ISP maps",
        100.0 * out.iter().map(|r| r.coverage).sum::<f64>() / out.len() as f64
    );

    write_json("text_failover_coverage", &out);
}
