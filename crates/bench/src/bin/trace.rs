//! The trace CLI: capture, inspect, validate, and convert telemetry
//! traces (`ecp-telemetry` JSONL) produced by the traced scenario entry
//! points and the campaign executor.
//!
//! ```text
//! trace run       <registry-id|scenario.toml> [--out FILE] [--snapshot FILE]
//! trace summarize <trace.jsonl>
//! trace validate  <trace.jsonl>
//! trace diff      <a.jsonl> <b.jsonl>
//! trace chrome    <trace.jsonl> [--out FILE]
//! ```
//!
//! `run` executes a scenario (experiment-registry id, or a scenario
//! TOML path) through [`ecp_scenario::run_scenario_traced`] and writes
//! the JSONL event trace to stdout or `--out`; `--snapshot` also writes
//! the counter/histogram snapshot as pretty JSON. Traces are
//! deterministic — a pure function of the scenario — so two `run`s of
//! the same id `diff` clean.
//!
//! `summarize` prints per-kind event counts and the control/power
//! headline numbers; `validate` checks every line parses as a
//! [`TelemetryEvent`] and that event times never go backwards;
//! `diff` compares two traces line by line (exit 1 on divergence);
//! `chrome` converts a trace to the chrome://tracing JSON format
//! (load it at `chrome://tracing` or in Perfetto).

use ecp_simnet::{PowerKind, TelemetryEvent};
use serde_json::{Map, Value};
use std::path::Path;
use std::process::exit;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn usage() -> ! {
    eprintln!(
        "usage: trace <run|summarize|validate|diff|chrome> <input> \
         [second-input] [--out FILE] [--snapshot FILE]"
    );
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    exit(1)
}

fn read_lines(path: &str) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Ok(doc) => doc.lines().map(str::to_string).collect(),
        Err(e) => fail(&format!("read {path}: {e}")),
    }
}

/// Parse every JSONL line; returns the events or the 1-based line
/// number and message of the first malformed line.
fn parse_events(lines: &[String]) -> Result<Vec<TelemetryEvent>, (usize, String)> {
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<TelemetryEvent>(line) {
            Ok(ev) => out.push(ev),
            Err(e) => return Err((i + 1, e.to_string())),
        }
    }
    Ok(out)
}

/// Resolve the `run` input: an experiment-registry id, or a path to a
/// scenario TOML document.
fn resolve_scenario(input: &str) -> ecp_scenario::Scenario {
    if let Some(s) = ecp_bench::scenarios::campaign_scenario(input) {
        return s;
    }
    if Path::new(input).is_file() {
        let doc = match std::fs::read_to_string(input) {
            Ok(d) => d,
            Err(e) => fail(&format!("read {input}: {e}")),
        };
        match ecp_scenario::Scenario::from_toml(&doc) {
            Ok(s) => return s,
            Err(e) => fail(&format!("parse {input}: {e}")),
        }
    }
    fail(&format!(
        "`{input}` is neither a registry id nor a scenario TOML file"
    ))
}

fn cmd_run(input: &str, out: Option<&str>, snapshot_out: Option<&str>) {
    let scenario = resolve_scenario(input);
    let (_, trace) = match ecp_scenario::run_scenario_traced(&scenario) {
        Ok(r) => r,
        Err(e) => fail(&format!("run `{}`: {e}", scenario.name)),
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
                fail(&format!("write {path}: {e}"));
            }
            println!("wrote {path} ({} events)", trace.lines.len());
        }
        None => {
            for line in &trace.lines {
                println!("{line}");
            }
        }
    }
    if let Some(path) = snapshot_out {
        let Some(snap) = &trace.snapshot else {
            fail("scenario produced no telemetry snapshot (non-simnet engine?)");
        };
        let body = serde_json::to_string_pretty(snap).expect("snapshot serializes");
        if let Err(e) = std::fs::write(path, body) {
            fail(&format!("write {path}: {e}"));
        }
        println!("wrote {path}");
    }
}

fn cmd_summarize(path: &str) {
    let lines = read_lines(path);
    let events = match parse_events(&lines) {
        Ok(ev) => ev,
        Err((n, e)) => fail(&format!("{path}:{n}: {e}")),
    };
    if events.is_empty() {
        println!("events: 0");
        return;
    }
    let (t0, t1) = (events[0].time(), events[events.len() - 1].time());
    println!("events: {}   span: {t0:.3}s .. {t1:.3}s", events.len());
    for kind in [
        "ControlRound",
        "ArcLoads",
        "PowerTransition",
        "TeReconfig",
        "Failure",
        "Repair",
    ] {
        let n = events.iter().filter(|e| e.kind() == kind).count();
        if n > 0 {
            println!("  {kind:<16} {n}");
        }
    }
    let mut rounds = 0u64;
    let mut immediate_n = 0u64;
    let mut decided_n = 0u64;
    let mut skipped = 0u64;
    let mut changes = 0u64;
    let mut wf = 0u64;
    let mut settle: Option<f64> = None;
    let mut peak_util = 0.0f64;
    let mut peak_ol = 0u32;
    let mut sleeps = 0u64;
    let mut wakes = 0u64;
    let mut idle_sum = 0.0f64;
    for ev in &events {
        match *ev {
            TelemetryEvent::ControlRound {
                t,
                immediate,
                decided,
                skipped_clean,
                share_changes,
                waterfill_iters,
                ..
            } => {
                rounds += 1;
                immediate_n += immediate as u64;
                decided_n += decided as u64;
                skipped += skipped_clean as u64;
                changes += share_changes as u64;
                wf += waterfill_iters;
                if share_changes > 0 {
                    settle = Some(t);
                }
            }
            TelemetryEvent::ArcLoads {
                max_util,
                overloaded,
                ..
            } => {
                peak_util = peak_util.max(max_util);
                peak_ol = peak_ol.max(overloaded);
            }
            TelemetryEvent::PowerTransition { kind, idle_s, .. } => match kind {
                PowerKind::Sleep => {
                    sleeps += 1;
                    idle_sum += idle_s;
                }
                PowerKind::WakeDone => wakes += 1,
                PowerKind::WakeStart => {}
            },
            _ => {}
        }
    }
    if rounds > 0 {
        println!(
            "control: rounds={rounds} immediate={immediate_n} decided={decided_n} \
             skipped_clean={skipped} share_changes={changes} waterfill_iters={wf}"
        );
        match settle {
            Some(t) => println!("settle: last share change at {t:.3}s"),
            None => println!("settle: no share changes"),
        }
        println!("peaks: max_util={peak_util:.4} overloaded_arcs={peak_ol}");
    }
    if sleeps + wakes > 0 {
        let mean_idle = if sleeps > 0 {
            idle_sum / sleeps as f64
        } else {
            0.0
        };
        println!("power: sleeps={sleeps} wakes={wakes} mean_idle_drain={mean_idle:.3}s");
    }
}

fn cmd_validate(path: &str) {
    let lines = read_lines(path);
    let events = match parse_events(&lines) {
        Ok(ev) => ev,
        Err((n, e)) => fail(&format!("{path}:{n}: {e}")),
    };
    let mut last = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let t = ev.time();
        if t < last {
            fail(&format!(
                "{path}:{}: time goes backwards ({t} after {last})",
                i + 1
            ));
        }
        last = t;
    }
    println!("ok: {} events, times monotone", events.len());
}

fn cmd_diff(a_path: &str, b_path: &str) {
    let a = read_lines(a_path);
    let b = read_lines(b_path);
    if a == b {
        println!("identical: {} events", a.len());
        return;
    }
    if a.len() != b.len() {
        eprintln!("lengths differ: {} vs {} events", a.len(), b.len());
    }
    for (i, (la, lb)) in a.iter().zip(&b).enumerate() {
        if la != lb {
            eprintln!("first divergence at line {}:", i + 1);
            eprintln!("  - {la}");
            eprintln!("  + {lb}");
            break;
        }
    }
    exit(1)
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

/// One chrome://tracing event: instants (`ph: "i"`) for discrete
/// happenings, counter tracks (`ph: "C"`) for the per-round load and
/// waterfill series. Times are microseconds of simulation time.
fn chrome_event(ev: &TelemetryEvent) -> Value {
    let ts = Value::F64(ev.time() * 1e6);
    let base = |name: &str, ph: &str, args: Value| {
        obj(vec![
            ("name", Value::Str(name.into())),
            ("ph", Value::Str(ph.into())),
            ("s", Value::Str("g".into())),
            ("ts", ts.clone()),
            ("pid", Value::U64(1)),
            ("tid", Value::U64(1)),
            ("args", args),
        ])
    };
    match *ev {
        TelemetryEvent::ControlRound {
            immediate,
            agents,
            decided,
            skipped_clean,
            deferred_phased,
            share_changes,
            waterfill_iters,
            ..
        } => base(
            "control-round",
            "i",
            obj(vec![
                ("immediate", Value::Bool(immediate)),
                ("agents", Value::U64(agents as u64)),
                ("decided", Value::U64(decided as u64)),
                ("skipped_clean", Value::U64(skipped_clean as u64)),
                ("deferred_phased", Value::U64(deferred_phased as u64)),
                ("share_changes", Value::U64(share_changes as u64)),
                ("waterfill_iters", Value::U64(waterfill_iters)),
            ]),
        ),
        TelemetryEvent::ArcLoads {
            max_util,
            mean_util,
            overloaded,
            ..
        } => base(
            "arc-loads",
            "C",
            obj(vec![
                ("max_util", Value::F64(max_util)),
                ("mean_util", Value::F64(mean_util)),
                ("overloaded", Value::U64(overloaded as u64)),
            ]),
        ),
        TelemetryEvent::PowerTransition {
            link, kind, idle_s, ..
        } => base(
            match kind {
                PowerKind::Sleep => "power-sleep",
                PowerKind::WakeStart => "power-wake-start",
                PowerKind::WakeDone => "power-wake-done",
            },
            "i",
            obj(vec![
                ("link", Value::U64(link as u64)),
                ("idle_s", Value::F64(idle_s)),
            ]),
        ),
        TelemetryEvent::TeReconfig {
            threshold,
            step,
            min_share,
            ..
        } => base(
            "te-reconfig",
            "i",
            obj(vec![
                ("threshold", Value::F64(threshold)),
                ("step", Value::F64(step)),
                ("min_share", Value::F64(min_share)),
            ]),
        ),
        TelemetryEvent::Failure {
            element,
            id,
            detected,
            ..
        } => base(
            if detected {
                "failure-detected"
            } else {
                "failure"
            },
            "i",
            obj(vec![
                ("element", Value::Str(format!("{element:?}"))),
                ("id", Value::U64(id as u64)),
            ]),
        ),
        TelemetryEvent::Repair {
            element,
            id,
            detected,
            ..
        } => base(
            if detected {
                "repair-detected"
            } else {
                "repair"
            },
            "i",
            obj(vec![
                ("element", Value::Str(format!("{element:?}"))),
                ("id", Value::U64(id as u64)),
            ]),
        ),
    }
}

fn cmd_chrome(path: &str, out: Option<&str>) {
    let lines = read_lines(path);
    let events = match parse_events(&lines) {
        Ok(ev) => ev,
        Err((n, e)) => fail(&format!("{path}:{n}: {e}")),
    };
    let doc = obj(vec![
        (
            "traceEvents",
            Value::Array(events.iter().map(chrome_event).collect()),
        ),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    let body = serde_json::to_string(&doc).expect("chrome trace serializes");
    match out {
        Some(p) => {
            if let Err(e) = std::fs::write(p, body) {
                fail(&format!("write {p}: {e}"));
            }
            println!("wrote {p} ({} events)", events.len());
        }
        None => println!("{body}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(input)) = (args.first(), args.get(1)) else {
        usage()
    };
    let out = flag(&args, "--out");
    match cmd.as_str() {
        "run" => cmd_run(input, out.as_deref(), flag(&args, "--snapshot").as_deref()),
        "summarize" => cmd_summarize(input),
        "validate" => cmd_validate(input),
        "diff" => match args.get(2) {
            Some(b) if !b.starts_with("--") => cmd_diff(input, b),
            _ => usage(),
        },
        "chrome" => cmd_chrome(input, out.as_deref()),
        _ => usage(),
    }
}
