//! The trace CLI: capture, inspect, validate, and convert telemetry
//! traces (`ecp-telemetry` JSONL) produced by the traced scenario entry
//! points and the campaign executor.
//!
//! ```text
//! trace run       <registry-id|scenario.toml> [--out FILE] [--snapshot FILE]
//!                                             [--profile] [--timing FILE]
//! trace summarize <trace.jsonl> [--json]
//! trace validate  <trace.jsonl>
//! trace diff      <a.jsonl> <b.jsonl>
//! trace chrome    <trace.jsonl> [--out FILE]
//! ```
//!
//! `run` executes a scenario (experiment-registry id, or a scenario
//! TOML path) through [`ecp_scenario::run_scenario_traced`] and writes
//! the JSONL event trace to stdout or `--out`; `--snapshot` also writes
//! the counter/histogram snapshot as pretty JSON. Traces are
//! deterministic — a pure function of the scenario — so two `run`s of
//! the same id `diff` clean. With `--profile` the run goes through the
//! span-profiled entry point instead: wall-clock `Span` lines ride the
//! trace (event lines stay byte-identical), and `--timing FILE` writes
//! the per-phase [`ecp_scenario::TimingSnapshot`] (count, total/self
//! time, p50/p95/p99) as pretty JSON.
//!
//! `summarize` prints per-kind event counts, the control/power headline
//! numbers, and — when the trace carries `Span` lines — a per-span
//! profile table with percentiles; `--json` emits the same summary as
//! one machine-readable JSON object (text stays the default, so
//! existing greps keep working); `validate` checks every line parses
//! as a [`TelemetryEvent`] and that event times never go backwards;
//! `diff` compares two traces line by line (exit 1 on divergence);
//! `chrome` converts a trace to the chrome://tracing JSON format
//! (load it at `chrome://tracing` or in Perfetto). Instants and
//! counters render in simulation-time microseconds under pid 1;
//! profiling spans render as duration (`ph: "X"`) events in wall-clock
//! microseconds under pid 2, so the two timebases never share a track.

use ecp_simnet::{PowerKind, TelemetryEvent};
use serde_json::{Map, Value};
use std::path::Path;
use std::process::exit;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn usage() -> ! {
    eprintln!(
        "usage: trace <run|summarize|validate|diff|chrome> <input> \
         [second-input] [--out FILE] [--snapshot FILE] [--profile] [--timing FILE] [--json]"
    );
    exit(2)
}

fn fail(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    exit(1)
}

fn read_lines(path: &str) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Ok(doc) => doc.lines().map(str::to_string).collect(),
        Err(e) => fail(&format!("read {path}: {e}")),
    }
}

/// Parse every JSONL line; returns the events or the 1-based line
/// number and message of the first malformed line.
fn parse_events(lines: &[String]) -> Result<Vec<TelemetryEvent>, (usize, String)> {
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<TelemetryEvent>(line) {
            Ok(ev) => out.push(ev),
            Err(e) => return Err((i + 1, e.to_string())),
        }
    }
    Ok(out)
}

/// Resolve the `run` input: an experiment-registry id, or a path to a
/// scenario TOML document.
fn resolve_scenario(input: &str) -> ecp_scenario::Scenario {
    if let Some(s) = ecp_bench::scenarios::campaign_scenario(input) {
        return s;
    }
    if Path::new(input).is_file() {
        let doc = match std::fs::read_to_string(input) {
            Ok(d) => d,
            Err(e) => fail(&format!("read {input}: {e}")),
        };
        match ecp_scenario::Scenario::from_toml(&doc) {
            Ok(s) => return s,
            Err(e) => fail(&format!("parse {input}: {e}")),
        }
    }
    fail(&format!(
        "`{input}` is neither a registry id nor a scenario TOML file"
    ))
}

fn cmd_run(
    input: &str,
    out: Option<&str>,
    snapshot_out: Option<&str>,
    profile: bool,
    timing_out: Option<&str>,
) {
    if timing_out.is_some() && !profile {
        fail("--timing requires --profile");
    }
    let scenario = resolve_scenario(input);
    let (trace, timing) = if profile {
        match ecp_scenario::run_scenario_profiled(&scenario) {
            Ok((_, trace, timing)) => (trace, Some(timing)),
            Err(e) => fail(&format!("run `{}`: {e}", scenario.name)),
        }
    } else {
        match ecp_scenario::run_scenario_traced(&scenario) {
            Ok((_, trace)) => (trace, None),
            Err(e) => fail(&format!("run `{}`: {e}", scenario.name)),
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
                fail(&format!("write {path}: {e}"));
            }
            println!("wrote {path} ({} events)", trace.lines.len());
        }
        None => {
            for line in &trace.lines {
                println!("{line}");
            }
        }
    }
    if let Some(path) = snapshot_out {
        let Some(snap) = &trace.snapshot else {
            fail("scenario produced no telemetry snapshot (non-simnet engine?)");
        };
        let body = serde_json::to_string_pretty(snap).expect("snapshot serializes");
        if let Err(e) = std::fs::write(path, body) {
            fail(&format!("write {path}: {e}"));
        }
        println!("wrote {path}");
    }
    if let Some(path) = timing_out {
        let t = timing.as_ref().expect("profiled run produced a timing");
        let body = serde_json::to_string_pretty(t).expect("timing serializes");
        if let Err(e) = std::fs::write(path, body) {
            fail(&format!("write {path}: {e}"));
        }
        println!("wrote {path} ({} spans)", t.spans.len());
    }
}

fn cmd_summarize(path: &str, json: bool) {
    let lines = read_lines(path);
    let events = match parse_events(&lines) {
        Ok(ev) => ev,
        Err((n, e)) => fail(&format!("{path}:{n}: {e}")),
    };
    if events.is_empty() {
        if json {
            println!(
                "{}",
                serde_json::to_string(&obj(vec![("events", Value::U64(0))]))
                    .expect("summary serializes")
            );
        } else {
            println!("events: 0");
        }
        return;
    }
    let (t0, t1) = (events[0].time(), events[events.len() - 1].time());
    let kinds: Vec<(&str, u64)> = [
        "ControlRound",
        "ArcLoads",
        "PowerTransition",
        "TeReconfig",
        "Failure",
        "Repair",
        "Span",
    ]
    .iter()
    .map(|&kind| {
        (
            kind,
            events.iter().filter(|e| e.kind() == kind).count() as u64,
        )
    })
    .filter(|&(_, n)| n > 0)
    .collect();
    let mut rounds = 0u64;
    let mut immediate_n = 0u64;
    let mut decided_n = 0u64;
    let mut skipped = 0u64;
    let mut changes = 0u64;
    let mut wf = 0u64;
    let mut settle: Option<f64> = None;
    let mut peak_util = 0.0f64;
    let mut peak_ol = 0u32;
    let mut sleeps = 0u64;
    let mut wakes = 0u64;
    let mut idle_sum = 0.0f64;
    for ev in &events {
        match *ev {
            TelemetryEvent::ControlRound {
                t,
                immediate,
                decided,
                skipped_clean,
                share_changes,
                waterfill_iters,
                ..
            } => {
                rounds += 1;
                immediate_n += immediate as u64;
                decided_n += decided as u64;
                skipped += skipped_clean as u64;
                changes += share_changes as u64;
                wf += waterfill_iters;
                if share_changes > 0 {
                    settle = Some(t);
                }
            }
            TelemetryEvent::ArcLoads {
                max_util,
                overloaded,
                ..
            } => {
                peak_util = peak_util.max(max_util);
                peak_ol = peak_ol.max(overloaded);
            }
            TelemetryEvent::PowerTransition { kind, idle_s, .. } => match kind {
                PowerKind::Sleep => {
                    sleeps += 1;
                    idle_sum += idle_s;
                }
                PowerKind::WakeDone => wakes += 1,
                PowerKind::WakeStart => {}
            },
            _ => {}
        }
    }
    let mean_idle = if sleeps > 0 {
        idle_sum / sleeps as f64
    } else {
        0.0
    };
    let spans = span_profile(&events);

    if json {
        let mut doc = vec![
            ("events", Value::U64(events.len() as u64)),
            (
                "span_s",
                obj(vec![("start", Value::F64(t0)), ("end", Value::F64(t1))]),
            ),
            (
                "kinds",
                obj(kinds.iter().map(|&(k, n)| (k, Value::U64(n))).collect()),
            ),
        ];
        if rounds > 0 {
            doc.push((
                "control",
                obj(vec![
                    ("rounds", Value::U64(rounds)),
                    ("immediate", Value::U64(immediate_n)),
                    ("decided", Value::U64(decided_n)),
                    ("skipped_clean", Value::U64(skipped)),
                    ("share_changes", Value::U64(changes)),
                    ("waterfill_iters", Value::U64(wf)),
                    ("settle_s", settle.map(Value::F64).unwrap_or(Value::Null)),
                ]),
            ));
            doc.push((
                "peaks",
                obj(vec![
                    ("max_util", Value::F64(peak_util)),
                    ("overloaded_arcs", Value::U64(peak_ol as u64)),
                ]),
            ));
        }
        if sleeps + wakes > 0 {
            doc.push((
                "power",
                obj(vec![
                    ("sleeps", Value::U64(sleeps)),
                    ("wakes", Value::U64(wakes)),
                    ("mean_idle_drain_s", Value::F64(mean_idle)),
                ]),
            ));
        }
        if !spans.is_empty() {
            doc.push((
                "spans",
                Value::Array(
                    spans
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("name", Value::Str(s.name.clone())),
                                ("count", Value::U64(s.count)),
                                ("total_s", Value::F64(s.total_s)),
                                ("self_s", Value::F64(s.self_s)),
                                ("p50_s", Value::F64(s.p50)),
                                ("p95_s", Value::F64(s.p95)),
                                ("p99_s", Value::F64(s.p99)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        println!(
            "{}",
            serde_json::to_string(&obj(doc)).expect("summary serializes")
        );
        return;
    }

    println!("events: {}   span: {t0:.3}s .. {t1:.3}s", events.len());
    for (kind, n) in &kinds {
        println!("  {kind:<16} {n}");
    }
    if rounds > 0 {
        println!(
            "control: rounds={rounds} immediate={immediate_n} decided={decided_n} \
             skipped_clean={skipped} share_changes={changes} waterfill_iters={wf}"
        );
        match settle {
            Some(t) => println!("settle: last share change at {t:.3}s"),
            None => println!("settle: no share changes"),
        }
        println!("peaks: max_util={peak_util:.4} overloaded_arcs={peak_ol}");
    }
    if sleeps + wakes > 0 {
        println!("power: sleeps={sleeps} wakes={wakes} mean_idle_drain={mean_idle:.3}s");
    }
    if !spans.is_empty() {
        println!("spans:");
        println!(
            "  {:<18} {:>7} {:>11} {:>11} {:>10} {:>10} {:>10}",
            "name", "count", "total (s)", "self (s)", "p50 (s)", "p95 (s)", "p99 (s)"
        );
        for s in &spans {
            println!(
                "  {:<18} {:>7} {:>11.6} {:>11.6} {:>10.6} {:>10.6} {:>10.6}",
                s.name, s.count, s.total_s, s.self_s, s.p50, s.p95, s.p99,
            );
        }
    }
}

/// One row of the per-span profile (percentiles interpolated from the
/// same `SPAN_DUR_BOUNDS` buckets the profiling sink uses).
struct SpanRow {
    name: String,
    count: u64,
    total_s: f64,
    self_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// Fold the trace's `Span` lines into per-span profile rows with
/// interpolated percentiles (same `SPAN_DUR_BOUNDS` buckets the
/// profiling sink uses). Empty when the trace was not profiled.
fn span_profile(events: &[TelemetryEvent]) -> Vec<SpanRow> {
    use ecp_telemetry::{HistogramSnapshot, SPAN_DUR_BOUNDS};
    use std::collections::BTreeMap;

    struct Agg {
        count: u64,
        total_s: f64,
        self_s: f64,
        min: f64,
        max: f64,
        buckets: Vec<u64>,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for ev in events {
        let TelemetryEvent::Span {
            name,
            dur_s,
            self_s,
            ..
        } = ev
        else {
            continue;
        };
        let a = by_name.entry(name.as_str()).or_insert_with(|| Agg {
            count: 0,
            total_s: 0.0,
            self_s: 0.0,
            min: f64::INFINITY,
            max: 0.0,
            buckets: vec![0; SPAN_DUR_BOUNDS.len() + 1],
        });
        a.count += 1;
        a.total_s += dur_s;
        a.self_s += self_s;
        a.min = a.min.min(*dur_s);
        a.max = a.max.max(*dur_s);
        let slot = SPAN_DUR_BOUNDS
            .iter()
            .position(|&b| *dur_s <= b)
            .unwrap_or(SPAN_DUR_BOUNDS.len());
        a.buckets[slot] += 1;
    }
    by_name
        .iter()
        .map(|(name, a)| {
            let mut buckets: Vec<(f64, u64)> = SPAN_DUR_BOUNDS
                .iter()
                .zip(&a.buckets)
                .map(|(&b, &n)| (b, n))
                .collect();
            buckets.push((-1.0, a.buckets[SPAN_DUR_BOUNDS.len()]));
            let hist = HistogramSnapshot {
                name: name.to_string(),
                count: a.count,
                sum: a.total_s,
                min: a.min,
                max: a.max,
                buckets,
            };
            SpanRow {
                name: name.to_string(),
                count: a.count,
                total_s: a.total_s,
                self_s: a.self_s,
                p50: hist.p50(),
                p95: hist.p95(),
                p99: hist.p99(),
            }
        })
        .collect()
}

fn cmd_validate(path: &str) {
    let lines = read_lines(path);
    let events = match parse_events(&lines) {
        Ok(ev) => ev,
        Err((n, e)) => fail(&format!("{path}:{n}: {e}")),
    };
    let mut last = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let t = ev.time();
        if t < last {
            fail(&format!(
                "{path}:{}: time goes backwards ({t} after {last})",
                i + 1
            ));
        }
        last = t;
    }
    println!("ok: {} events, times monotone", events.len());
}

fn cmd_diff(a_path: &str, b_path: &str) {
    let a = read_lines(a_path);
    let b = read_lines(b_path);
    if a == b {
        println!("identical: {} events", a.len());
        return;
    }
    if a.len() != b.len() {
        eprintln!("lengths differ: {} vs {} events", a.len(), b.len());
    }
    for (i, (la, lb)) in a.iter().zip(&b).enumerate() {
        if la != lb {
            eprintln!("first divergence at line {}:", i + 1);
            eprintln!("  - {la}");
            eprintln!("  + {lb}");
            break;
        }
    }
    exit(1)
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

/// One chrome://tracing event: instants (`ph: "i"`) for discrete
/// happenings, counter tracks (`ph: "C"`) for the per-round load and
/// waterfill series — microseconds of simulation time, pid 1. Profiling
/// spans become duration events (`ph: "X"`) in wall-clock microseconds
/// under pid 2, so sim-time and wall-time never share a timeline.
fn chrome_event(ev: &TelemetryEvent) -> Value {
    let ts = Value::F64(ev.time() * 1e6);
    let base = |name: &str, ph: &str, args: Value| {
        obj(vec![
            ("name", Value::Str(name.into())),
            ("ph", Value::Str(ph.into())),
            ("s", Value::Str("g".into())),
            ("ts", ts.clone()),
            ("pid", Value::U64(1)),
            ("tid", Value::U64(1)),
            ("args", args),
        ])
    };
    match *ev {
        TelemetryEvent::ControlRound {
            immediate,
            agents,
            decided,
            skipped_clean,
            deferred_phased,
            share_changes,
            waterfill_iters,
            ..
        } => base(
            "control-round",
            "i",
            obj(vec![
                ("immediate", Value::Bool(immediate)),
                ("agents", Value::U64(agents as u64)),
                ("decided", Value::U64(decided as u64)),
                ("skipped_clean", Value::U64(skipped_clean as u64)),
                ("deferred_phased", Value::U64(deferred_phased as u64)),
                ("share_changes", Value::U64(share_changes as u64)),
                ("waterfill_iters", Value::U64(waterfill_iters)),
            ]),
        ),
        TelemetryEvent::ArcLoads {
            max_util,
            mean_util,
            overloaded,
            ..
        } => base(
            "arc-loads",
            "C",
            obj(vec![
                ("max_util", Value::F64(max_util)),
                ("mean_util", Value::F64(mean_util)),
                ("overloaded", Value::U64(overloaded as u64)),
            ]),
        ),
        TelemetryEvent::PowerTransition {
            link, kind, idle_s, ..
        } => base(
            match kind {
                PowerKind::Sleep => "power-sleep",
                PowerKind::WakeStart => "power-wake-start",
                PowerKind::WakeDone => "power-wake-done",
            },
            "i",
            obj(vec![
                ("link", Value::U64(link as u64)),
                ("idle_s", Value::F64(idle_s)),
            ]),
        ),
        TelemetryEvent::TeReconfig {
            threshold,
            step,
            min_share,
            ..
        } => base(
            "te-reconfig",
            "i",
            obj(vec![
                ("threshold", Value::F64(threshold)),
                ("step", Value::F64(step)),
                ("min_share", Value::F64(min_share)),
            ]),
        ),
        TelemetryEvent::Failure {
            element,
            id,
            detected,
            ..
        } => base(
            if detected {
                "failure-detected"
            } else {
                "failure"
            },
            "i",
            obj(vec![
                ("element", Value::Str(format!("{element:?}"))),
                ("id", Value::U64(id as u64)),
            ]),
        ),
        TelemetryEvent::Span {
            ref name,
            start_s,
            dur_s,
            self_s,
            depth,
            ..
        } => obj(vec![
            ("name", Value::Str(name.clone())),
            ("ph", Value::Str("X".into())),
            ("ts", Value::F64(start_s * 1e6)),
            ("dur", Value::F64(dur_s * 1e6)),
            ("pid", Value::U64(2)),
            ("tid", Value::U64(1)),
            (
                "args",
                obj(vec![
                    ("self_s", Value::F64(self_s)),
                    ("depth", Value::U64(depth as u64)),
                ]),
            ),
        ]),
        TelemetryEvent::Repair {
            element,
            id,
            detected,
            ..
        } => base(
            if detected {
                "repair-detected"
            } else {
                "repair"
            },
            "i",
            obj(vec![
                ("element", Value::Str(format!("{element:?}"))),
                ("id", Value::U64(id as u64)),
            ]),
        ),
    }
}

fn cmd_chrome(path: &str, out: Option<&str>) {
    let lines = read_lines(path);
    let events = match parse_events(&lines) {
        Ok(ev) => ev,
        Err((n, e)) => fail(&format!("{path}:{n}: {e}")),
    };
    let doc = obj(vec![
        (
            "traceEvents",
            Value::Array(events.iter().map(chrome_event).collect()),
        ),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    let body = serde_json::to_string(&doc).expect("chrome trace serializes");
    match out {
        Some(p) => {
            if let Err(e) = std::fs::write(p, body) {
                fail(&format!("write {p}: {e}"));
            }
            println!("wrote {p} ({} events)", events.len());
        }
        None => println!("{body}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(input)) = (args.first(), args.get(1)) else {
        usage()
    };
    let out = flag(&args, "--out");
    match cmd.as_str() {
        "run" => cmd_run(
            input,
            out.as_deref(),
            flag(&args, "--snapshot").as_deref(),
            args.iter().any(|a| a == "--profile"),
            flag(&args, "--timing").as_deref(),
        ),
        "summarize" => cmd_summarize(input, args.iter().any(|a| a == "--json")),
        "validate" => cmd_validate(input),
        "diff" => match args.get(2) {
            Some(b) if !b.starts_with("--") => cmd_diff(input, b),
            _ => usage(),
        },
        "chrome" => cmd_chrome(input, out.as_deref()),
        _ => usage(),
    }
}
