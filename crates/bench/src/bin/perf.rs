//! End-to-end perf harness — the first point of the repo's BENCH
//! trajectory (ISSUE 5).
//!
//! Times representative registry scenarios under both load-accounting
//! modes of `ecp-simnet` — `Scratch` (the pre-incremental engine:
//! every load query rescans all flows × paths × arcs) and
//! `Incremental` (per-arc dirty recompute) — verifies the two produce
//! byte-identical reports, and emits `BENCH_simnet.json` with the
//! before/after wall-clock and speedups. A second pass measures the
//! telemetry overhead (no-op sink vs JSONL sink, `overhead` block) and
//! asserts a traced run leaves the report byte-identical.
//!
//! ```text
//! cargo run --release -p ecp-bench --bin perf                  # full (150 s te-stability family)
//! cargo run --release -p ecp-bench --bin perf -- --quick 1 \
//!     --ceiling-s 120 --out BENCH_simnet.json                  # CI smoke: scaled runs + wall-clock ceiling
//! perf record  [--bench FILE] [--history FILE]                 # append a git-sha-stamped snapshot
//! perf history [--history FILE] [--metric NAME]                # print the recorded trajectory
//! perf gate    [--bench FILE] [--history FILE] [--threshold P]
//!              [--against SHA]                                  # HEAD vs snapshot; exit 1 on regression, 2 without baseline
//! ```
//!
//! Timing is best-of-`--iters` per (scenario, mode); planning
//! (topology build, Dijkstra/Yen, oracle probes) happens once per
//! scenario through `ecp_scenario::resolve` and is excluded, so the
//! numbers isolate the simulator hot loop the incremental accounting
//! targets. Criterion microbenches of the individual kernels live in
//! `crates/bench/benches/{load_accounting,routing_paths}.rs`.
//!
//! The **observatory** subcommands turn one-off BENCH files into a
//! trajectory. `record` flattens a BENCH file into scalar metrics and
//! appends one JSONL snapshot (UTC timestamp + git sha + quick flag) to
//! `results/bench_history/simnet.jsonl`; `history` tabulates the
//! snapshots; `gate` compares a freshly-measured BENCH file against the
//! last recorded snapshot (or the last one matching a `--against
//! <git_sha>` prefix) with per-metric direction heuristics
//! (`*_ms`/allocs/bytes regress upward, `speedup`/`rounds_per_s`
//! regress downward) and a relative noise threshold (`--threshold 25`
//! or `25%`), printing greppable `GATE OK` / `GATE FAIL` lines and
//! exiting 1 on any regression or 2 (one-line `GATE ERROR` on stderr)
//! when the history is missing/empty or no snapshot matches.

use ecp_bench::{arg, print_table};
use ecp_scenario::{run_resolved, run_resolved_traced, ControlSpec, ScenarioReport};
use ecp_simnet::{set_default_load_accounting, LoadAccounting, SimConfig, Simulation};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::time::Instant;

/// Counting global allocator when built with `--features count-allocs`,
/// so the `allocs` block carries measured allocs/round instead of null.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: ecp_telemetry::alloc_count::CountingAllocator =
    ecp_telemetry::alloc_count::CountingAllocator;

#[derive(Serialize)]
struct ScenarioTiming {
    id: String,
    samples: usize,
    scratch_ms: f64,
    incremental_ms: f64,
    speedup: f64,
    reports_identical: bool,
}

#[derive(Serialize)]
struct OverheadTiming {
    id: String,
    /// Untraced wall-clock (no-op sink statically compiled out), ms.
    baseline_ms: f64,
    /// Wall-clock with the JSONL sink recording every event, ms.
    traced_ms: f64,
    /// `traced / baseline - 1` (0 = free, 0.05 = 5 % slower).
    overhead_frac: f64,
    /// Events the traced run emitted.
    trace_events: usize,
    reports_identical: bool,
}

/// The telemetry-overhead block: the cost of running the te-stability
/// family with the JSONL sink on versus the default no-op sink. The
/// no-op path is the one golden hashes and the speedup numbers above
/// are measured on; this block pins that tracing is pay-as-you-go.
#[derive(Serialize)]
struct TelemetryOverhead {
    scenarios: Vec<OverheadTiming>,
    family_baseline_ms: f64,
    family_traced_ms: f64,
    family_overhead_frac: f64,
}

/// One policy's decision-path measurement: throughput of warmed,
/// sampling-free control rounds (pure observe→decide→apply on the
/// registry te-stability shape), plus — when the harness is built with
/// `--features count-allocs` — the heap allocations that path makes
/// per round (0.0 since the zero-alloc refactor; `null` without the
/// feature).
#[derive(Serialize)]
struct PolicyAllocs {
    id: String,
    /// Control rounds driven through the measured window.
    rounds: u64,
    /// Warmed decision-path control rounds per second.
    policy_rounds_per_s: f64,
    /// Heap allocations per round (needs `count-allocs`).
    allocs_per_round: Option<f64>,
    /// Heap bytes allocated per round (needs `count-allocs`).
    bytes_per_round: Option<f64>,
}

#[derive(Serialize)]
struct BenchFile {
    /// Schema tag; bump on layout changes.
    schema: &'static str,
    /// `git rev-parse HEAD` at measurement time (`"unknown"` outside a
    /// work tree), so BENCH files pin the exact code they measured.
    git_sha: String,
    /// Measurement wall time, UTC (`YYYY-MM-DDTHH:MM:SSZ`).
    recorded_at_utc: String,
    quick: bool,
    iters: usize,
    te_stability_duration_s: f64,
    te_stability_load: f64,
    /// Network/agent multiplier of the te-stability measurement points
    /// (`te_stability_scaled`): 1 = the golden-pinned registry shape.
    te_stability_scale: usize,
    /// The te-stability family: sustained-overload coupled flows on
    /// the PoP-access ISP, one entry per control policy. The regime
    /// the ≥5× (≥20× desync) end-to-end target is measured in.
    te_stability: Vec<ScenarioTiming>,
    /// Other representative simnet registry scenarios (CI-scaled).
    representative: Vec<ScenarioTiming>,
    min_te_stability_speedup: f64,
    /// Wall-clock of running the whole te-stability family end to end,
    /// before (scratch) and after (incremental + decision skipping).
    family_scratch_ms: f64,
    family_incremental_ms: f64,
    family_speedup: f64,
    /// Cost of turning the telemetry JSONL sink on (incremental mode).
    overhead: TelemetryOverhead,
    /// Per-policy decision-path throughput + allocation accounting.
    allocs: Vec<PolicyAllocs>,
}

/// Best-of-`iters` wall-clock of one scenario under one accounting
/// mode; returns (millis, last report).
fn time_mode(
    scenario: &ecp_scenario::Scenario,
    resolved: &ecp_scenario::ResolvedScenario,
    mode: LoadAccounting,
    iters: usize,
) -> (f64, ScenarioReport) {
    set_default_load_accounting(mode);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let report = run_resolved(scenario, resolved).expect("perf scenario runs");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    (best, last.expect("at least one iteration"))
}

fn time_scenario(
    id: &str,
    scenario: &ecp_scenario::Scenario,
    resolved: &ecp_scenario::ResolvedScenario,
    iters: usize,
) -> ScenarioTiming {
    // Untimed warmup: populates the resolution's lazy caches (the
    // max-feasible oracle probe) and the allocator, so both arms time
    // only the simulation even at --iters 1.
    let _ = run_resolved(scenario, resolved).expect("perf scenario runs");
    let (scratch_ms, scratch_report) =
        time_mode(scenario, resolved, LoadAccounting::Scratch, iters);
    let (incremental_ms, incremental_report) =
        time_mode(scenario, resolved, LoadAccounting::Incremental, iters);
    let identical = serde_json::to_string(&scratch_report).expect("report serializes")
        == serde_json::to_string(&incremental_report).expect("report serializes");
    assert!(
        identical,
        "{id}: incremental report diverged from the scratch oracle"
    );
    ScenarioTiming {
        id: id.to_string(),
        samples: incremental_report.samples,
        scratch_ms,
        incremental_ms,
        speedup: scratch_ms / incremental_ms.max(1e-9),
        reports_identical: identical,
    }
}

/// Sink-off vs JSONL-sink-on wall-clock of one scenario (incremental
/// accounting, best of `iters`). Asserts the serialized reports are
/// byte-identical: with `metrics.telemetry` unset, a traced run must
/// not perturb the report in any way.
fn time_overhead(
    id: &str,
    scenario: &ecp_scenario::Scenario,
    resolved: &ecp_scenario::ResolvedScenario,
    iters: usize,
) -> OverheadTiming {
    set_default_load_accounting(LoadAccounting::Incremental);
    let (baseline_ms, baseline_report) =
        time_mode(scenario, resolved, LoadAccounting::Incremental, iters);
    let mut traced_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let out = run_resolved_traced(scenario, resolved).expect("perf scenario runs traced");
        traced_ms = traced_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    let (traced_report, trace) = last.expect("at least one iteration");
    let identical = serde_json::to_string(&baseline_report).expect("report serializes")
        == serde_json::to_string(&traced_report).expect("report serializes");
    assert!(
        identical,
        "{id}: traced report diverged from the untraced run"
    );
    OverheadTiming {
        id: id.to_string(),
        baseline_ms,
        traced_ms,
        overhead_frac: traced_ms / baseline_ms.max(1e-9) - 1.0,
        trace_events: trace.lines.len(),
        reports_identical: identical,
    }
}

/// Measure one policy's warmed decision path on the registry
/// te-stability shape (unscaled, 44 gravity pairs): sampling is pushed
/// past the window so the measured events are control rounds only,
/// then `rounds` rounds are timed — and, with `count-allocs`, their
/// heap allocations counted.
fn time_decision_path(id: &str, control: &ControlSpec, rounds: u64) -> PolicyAllocs {
    set_default_load_accounting(LoadAccounting::Incremental);
    let scenario = ecp_bench::scenarios::te_stability(10.0, 0.7, *control);
    let resolved = ecp_scenario::resolve(&scenario).expect("perf scenario resolves");
    let cfg = SimConfig {
        control_interval: 0.5,
        wake_time: 5.0,
        detect_delay: 0.5,
        sleep_after: 2.0,
        sample_interval: 1e9,
        ..SimConfig::default()
    };
    let mut sim = Simulation::with_policy(
        &resolved.built.topo,
        &resolved.power,
        &resolved.tables,
        cfg,
        control.build(),
    );
    sim.set_load_accounting(LoadAccounting::Incremental);
    for &(o, d) in &resolved.pairs {
        sim.add_flow(&resolved.tables, o, d, 2e7);
    }
    sim.run_until(5.0);
    #[cfg(feature = "count-allocs")]
    let (a0, b0) = (
        ecp_telemetry::alloc_count::allocations(),
        ecp_telemetry::alloc_count::bytes_allocated(),
    );
    let t0 = Instant::now();
    sim.run_until(5.0 + rounds as f64 * 0.5);
    let dt = t0.elapsed().as_secs_f64();
    #[cfg(feature = "count-allocs")]
    let (allocs_per_round, bytes_per_round) = (
        Some((ecp_telemetry::alloc_count::allocations() - a0) as f64 / rounds as f64),
        Some((ecp_telemetry::alloc_count::bytes_allocated() - b0) as f64 / rounds as f64),
    );
    #[cfg(not(feature = "count-allocs"))]
    let (allocs_per_round, bytes_per_round) = (None, None);
    PolicyAllocs {
        id: id.to_string(),
        rounds,
        policy_rounds_per_s: rounds as f64 / dt.max(1e-9),
        allocs_per_round,
        bytes_per_round,
    }
}

/// `git rev-parse HEAD`, or `"unknown"` when git is unavailable.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Current UTC time as `YYYY-MM-DDTHH:MM:SSZ` (civil-from-days, no
/// external time crates).
fn utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0) as i64;
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (hh, mm, ss) = (rem / 3600, (rem / 60) % 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// One recorded point of the BENCH trajectory
/// (`results/bench_history/*.jsonl`, one JSON object per line).
#[derive(Serialize, Deserialize)]
struct HistoryRecord {
    schema: String,
    recorded_at_utc: String,
    git_sha: String,
    quick: bool,
    metrics: BTreeMap<String, f64>,
}

/// Flatten a BENCH JSON document into dotted scalar metrics — the
/// common currency of `record`, `history`, and `gate`. Works on any
/// `ecp-bench-perf/*` schema: arrays of `{id, ...}` blocks become
/// `<block>.<id>.<field>`, top-level numbers pass through.
fn flatten_metrics(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Value::Object(top) = doc else {
        return out;
    };
    for (key, val) in top {
        match val {
            Value::Array(entries) => {
                for entry in entries {
                    let Value::Object(fields) = entry else {
                        continue;
                    };
                    let Some(id) = fields.get("id").and_then(Value::as_str) else {
                        continue;
                    };
                    for (f, v) in fields {
                        if let Some(x) = v.as_f64() {
                            out.insert(format!("{key}.{id}.{f}"), x);
                        }
                    }
                }
            }
            Value::Object(fields) => {
                for (f, v) in fields {
                    if let Some(x) = v.as_f64() {
                        out.insert(format!("{key}.{f}"), x);
                    }
                }
            }
            _ => {
                if let Some(x) = val.as_f64() {
                    out.insert(key.clone(), x);
                }
            }
        }
    }
    out
}

/// Object-field lookup on a JSON value (`None` for non-objects).
fn field<'a>(doc: &'a Value, key: &str) -> Option<&'a Value> {
    match doc {
        Value::Object(m) => m.get(key),
        _ => None,
    }
}

fn read_bench(path: &str) -> Value {
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read bench file {path}: {e} (run `perf` first)"));
    serde_json::from_str(&doc).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn read_history(path: &str) -> Vec<HistoryRecord> {
    let Ok(doc) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    doc.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("parse {path}: {e}")))
        .collect()
}

fn default_history_path() -> String {
    ecp_bench::results_dir()
        .join("bench_history")
        .join("simnet.jsonl")
        .display()
        .to_string()
}

/// `perf record`: flatten a BENCH file and append one snapshot to the
/// history JSONL. Sha/timestamp/quick come from the BENCH file itself
/// (schema /4 stamps them) with a fresh fallback for older files.
fn cmd_record() {
    let bench: String = arg("bench", "BENCH_simnet.json".to_string());
    let history: String = arg("history", default_history_path());
    let doc = read_bench(&bench);
    let record = HistoryRecord {
        schema: "ecp-bench-history/1".into(),
        recorded_at_utc: field(&doc, "recorded_at_utc")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(utc_now),
        git_sha: field(&doc, "git_sha")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(git_sha),
        quick: field(&doc, "quick")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        metrics: flatten_metrics(&doc),
    };
    if let Some(dir) = std::path::Path::new(&history).parent() {
        std::fs::create_dir_all(dir).expect("create history dir");
    }
    let line = serde_json::to_string(&record).expect("history record serializes");
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .unwrap_or_else(|e| panic!("open {history}: {e}"));
    writeln!(f, "{line}").expect("append history record");
    println!(
        "recorded {} ({} metrics, quick={}) -> {history}",
        record.git_sha,
        record.metrics.len(),
        record.quick
    );
}

/// `perf history`: tabulate the recorded trajectory, headline metrics
/// by default or one `--metric` across every snapshot.
fn cmd_history() {
    let history: String = arg("history", default_history_path());
    let metric: String = arg("metric", String::new());
    let records = read_history(&history);
    if records.is_empty() {
        println!("no snapshots in {history}");
        return;
    }
    let fmt = |r: &HistoryRecord, name: &str| {
        r.metrics
            .get(name)
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".into())
    };
    let (headers, rows): (Vec<&str>, Vec<Vec<String>>) = if metric.is_empty() {
        (
            vec![
                "recorded (UTC)",
                "sha",
                "quick",
                "family speedup",
                "min speedup",
                "family incr (ms)",
            ],
            records
                .iter()
                .map(|r| {
                    vec![
                        r.recorded_at_utc.clone(),
                        r.git_sha.chars().take(12).collect(),
                        r.quick.to_string(),
                        fmt(r, "family_speedup"),
                        fmt(r, "min_te_stability_speedup"),
                        fmt(r, "family_incremental_ms"),
                    ]
                })
                .collect(),
        )
    } else {
        (
            vec!["recorded (UTC)", "sha", "quick", "value"],
            records
                .iter()
                .map(|r| {
                    vec![
                        r.recorded_at_utc.clone(),
                        r.git_sha.chars().take(12).collect(),
                        r.quick.to_string(),
                        fmt(r, &metric),
                    ]
                })
                .collect(),
        )
    };
    let title = if metric.is_empty() {
        format!("BENCH trajectory ({} snapshots)", records.len())
    } else {
        format!("BENCH trajectory: {metric} ({} snapshots)", records.len())
    };
    print_table(&title, &headers, &rows);
}

/// Which way a metric regresses, from its name.
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Neutral,
}

fn direction(name: &str) -> Direction {
    let field = name.rsplit('.').next().unwrap_or(name);
    if field.ends_with("_ms") || field.contains("allocs") || field.contains("bytes") {
        Direction::LowerIsBetter
    } else if field.contains("rounds_per_s") || field.contains("speedup") {
        Direction::HigherIsBetter
    } else {
        Direction::Neutral
    }
}

/// `perf gate`: compare a BENCH file against the last recorded
/// snapshot — or, with `--against <git_sha>`, the last snapshot whose
/// sha starts with the argument. Exit 1 (after printing `GATE FAIL`
/// lines) when any directional metric regresses by more than
/// `--threshold` percent; exit 2 with a one-line error when there is
/// no baseline to compare against.
fn cmd_gate() {
    let bench: String = arg("bench", "BENCH_simnet.json".to_string());
    let history: String = arg("history", default_history_path());
    let against: String = arg("against", String::new());
    let threshold_raw: String = arg("threshold", "10%".to_string());
    let threshold: f64 = threshold_raw
        .trim_end_matches('%')
        .parse::<f64>()
        .unwrap_or_else(|_| panic!("bad --threshold `{threshold_raw}` (expected e.g. 25 or 25%)"))
        / 100.0;

    let records = read_history(&history);
    if records.is_empty() {
        eprintln!(
            "GATE ERROR: no baseline snapshot in {history} — run `perf record` first \
             (or point --history at an existing trajectory)"
        );
        std::process::exit(2);
    }
    let doc = match std::fs::read_to_string(&bench)
        .map_err(|e| e.to_string())
        .and_then(|d| serde_json::from_str(&d).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("GATE ERROR: read bench file {bench}: {e} (run `perf` first)");
            std::process::exit(2);
        }
    };
    let head = flatten_metrics(&doc);
    let base = if against.is_empty() {
        records.last().unwrap()
    } else {
        match records.iter().rfind(|r| r.git_sha.starts_with(&against)) {
            Some(r) => r,
            None => {
                eprintln!(
                    "GATE ERROR: no snapshot in {history} matches --against {against} \
                     ({} snapshots, see `perf history`)",
                    records.len()
                );
                std::process::exit(2);
            }
        }
    };
    let head_quick = field(&doc, "quick")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    if base.quick != head_quick {
        println!(
            "note: comparing quick={head_quick} HEAD against quick={} baseline \
             — expect extra noise",
            base.quick
        );
    }

    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (name, &new) in &head {
        let Some(&old) = base.metrics.get(name) else {
            continue;
        };
        if old.abs() < 1e-9 {
            continue;
        }
        let rel = (new - old) / old.abs();
        let worse = match direction(name) {
            Direction::LowerIsBetter => rel > threshold,
            Direction::HigherIsBetter => -rel > threshold,
            Direction::Neutral => continue,
        };
        compared += 1;
        if worse {
            regressions += 1;
            println!(
                "GATE FAIL {name}: {old:.4} -> {new:.4} ({:+.1}%)",
                rel * 100.0
            );
        }
    }
    if regressions > 0 {
        println!(
            "GATE FAIL: {regressions} of {compared} metrics regressed more than {:.0}% \
             vs {}",
            threshold * 100.0,
            base.git_sha
        );
        std::process::exit(1);
    }
    println!(
        "GATE OK: {compared} metrics within {:.0}% of {} ({})",
        threshold * 100.0,
        base.git_sha,
        base.recorded_at_utc
    );
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("record") => return cmd_record(),
        Some("history") => return cmd_history(),
        Some("gate") => return cmd_gate(),
        _ => {}
    }
    let quick: usize = arg("quick", 0);
    let quick = quick != 0;
    let iters: usize = arg("iters", if quick { 1 } else { 3 });
    let duration: f64 = arg("duration", if quick { 20.0 } else { 150.0 });
    let load: f64 = arg("load", 0.7);
    let scale: usize = arg("scale", if quick { 1 } else { 8 });
    let ceiling_s: f64 = arg("ceiling-s", 0.0);
    let out: String = arg("out", "BENCH_simnet.json".to_string());

    let decision_rounds: u64 = arg("decision-rounds", if quick { 400 } else { 4000 });

    let mut te_stability = Vec::new();
    let mut overhead_scenarios = Vec::new();
    let mut allocs = Vec::new();
    for (id, control) in ecp_bench::scenarios::te_stability_policies() {
        let scenario = ecp_bench::scenarios::te_stability_scaled(duration, load, control, scale);
        let resolved = ecp_scenario::resolve(&scenario).expect("perf scenario resolves");
        te_stability.push(time_scenario(id, &scenario, &resolved, iters));
        overhead_scenarios.push(time_overhead(id, &scenario, &resolved, iters));
        allocs.push(time_decision_path(id, &control, decision_rounds));
    }

    let representative_ids = [
        "fig7-click-adaptation",
        "fig8a-pop-access",
        "scenario-cascade-flashcrowd",
        "scenario-rolling-maintenance",
    ];
    let mut representative = Vec::new();
    for id in representative_ids {
        let scenario = ecp_bench::scenarios::campaign_scenario(id)
            .unwrap_or_else(|| panic!("unknown registry id {id}"));
        let resolved = ecp_scenario::resolve(&scenario).expect("perf scenario resolves");
        representative.push(time_scenario(id, &scenario, &resolved, iters));
    }

    let min_speedup = te_stability
        .iter()
        .map(|t| t.speedup)
        .fold(f64::INFINITY, f64::min);
    let family_scratch_ms: f64 = te_stability.iter().map(|t| t.scratch_ms).sum();
    let family_incremental_ms: f64 = te_stability.iter().map(|t| t.incremental_ms).sum();
    let family_speedup = family_scratch_ms / family_incremental_ms.max(1e-9);

    let rows: Vec<Vec<String>> = te_stability
        .iter()
        .chain(&representative)
        .map(|t| {
            vec![
                t.id.clone(),
                format!("{:.1}", t.scratch_ms),
                format!("{:.1}", t.incremental_ms),
                format!("{:.1}x", t.speedup),
            ]
        })
        .collect();
    print_table(
        &format!("end-to-end wall-clock, best of {iters} (scratch vs incremental)"),
        &["scenario", "scratch (ms)", "incremental (ms)", "speedup"],
        &rows,
    );
    println!("min te-stability speedup: {min_speedup:.1}x");
    println!(
        "te-stability family end-to-end: {family_scratch_ms:.0} ms scratch vs \
         {family_incremental_ms:.0} ms incremental ({family_speedup:.1}x)"
    );

    let family_baseline_ms: f64 = overhead_scenarios.iter().map(|t| t.baseline_ms).sum();
    let family_traced_ms: f64 = overhead_scenarios.iter().map(|t| t.traced_ms).sum();
    let family_overhead_frac = family_traced_ms / family_baseline_ms.max(1e-9) - 1.0;
    let overhead_rows: Vec<Vec<String>> = overhead_scenarios
        .iter()
        .map(|t| {
            vec![
                t.id.clone(),
                format!("{:.1}", t.baseline_ms),
                format!("{:.1}", t.traced_ms),
                format!("{:+.1}%", t.overhead_frac * 100.0),
                t.trace_events.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("telemetry overhead, best of {iters} (no-op sink vs JSONL sink)"),
        &["scenario", "off (ms)", "traced (ms)", "overhead", "events"],
        &overhead_rows,
    );
    println!(
        "telemetry family overhead: {family_baseline_ms:.0} ms off vs \
         {family_traced_ms:.0} ms traced ({:+.1}%)",
        family_overhead_frac * 100.0
    );
    let overhead = TelemetryOverhead {
        scenarios: overhead_scenarios,
        family_baseline_ms,
        family_traced_ms,
        family_overhead_frac,
    };

    let alloc_rows: Vec<Vec<String>> = allocs
        .iter()
        .map(|a| {
            vec![
                a.id.clone(),
                format!("{:.0}", a.policy_rounds_per_s),
                a.allocs_per_round
                    .map_or("n/a".to_string(), |v| format!("{v:.1}")),
                a.bytes_per_round
                    .map_or("n/a".to_string(), |v| format!("{v:.0}")),
            ]
        })
        .collect();
    print_table(
        &format!("decision path, warmed ({decision_rounds} sampling-free control rounds)"),
        &["policy", "rounds/s", "allocs/round", "bytes/round"],
        &alloc_rows,
    );

    if ceiling_s > 0.0 {
        for t in &te_stability {
            assert!(
                t.incremental_ms / 1e3 <= ceiling_s,
                "{} took {:.1} s incremental, over the {ceiling_s} s ceiling",
                t.id,
                t.incremental_ms / 1e3
            );
        }
        println!("ceiling ok: every te-stability run under {ceiling_s} s");
    }

    let file = BenchFile {
        schema: "ecp-bench-perf/4",
        git_sha: git_sha(),
        recorded_at_utc: utc_now(),
        quick,
        iters,
        te_stability_duration_s: duration,
        te_stability_load: load,
        te_stability_scale: scale,
        te_stability,
        representative,
        min_te_stability_speedup: min_speedup,
        family_scratch_ms,
        family_incremental_ms,
        family_speedup,
        overhead,
        allocs,
    };
    let body = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(&out, body + "\n").expect("write bench file");
    println!("wrote {out}");
}
