//! End-to-end perf harness — the first point of the repo's BENCH
//! trajectory (ISSUE 5).
//!
//! Times representative registry scenarios under both load-accounting
//! modes of `ecp-simnet` — `Scratch` (the pre-incremental engine:
//! every load query rescans all flows × paths × arcs) and
//! `Incremental` (per-arc dirty recompute) — verifies the two produce
//! byte-identical reports, and emits `BENCH_simnet.json` with the
//! before/after wall-clock and speedups. A second pass measures the
//! telemetry overhead (no-op sink vs JSONL sink, `overhead` block) and
//! asserts a traced run leaves the report byte-identical.
//!
//! ```text
//! cargo run --release -p ecp-bench --bin perf                  # full (150 s te-stability family)
//! cargo run --release -p ecp-bench --bin perf -- --quick 1 \
//!     --ceiling-s 120 --out BENCH_simnet.json                  # CI smoke: scaled runs + wall-clock ceiling
//! ```
//!
//! Timing is best-of-`--iters` per (scenario, mode); planning
//! (topology build, Dijkstra/Yen, oracle probes) happens once per
//! scenario through `ecp_scenario::resolve` and is excluded, so the
//! numbers isolate the simulator hot loop the incremental accounting
//! targets. Criterion microbenches of the individual kernels live in
//! `crates/bench/benches/{load_accounting,routing_paths}.rs`.

use ecp_bench::{arg, print_table};
use ecp_scenario::{run_resolved, run_resolved_traced, ControlSpec, ScenarioReport};
use ecp_simnet::{set_default_load_accounting, LoadAccounting, SimConfig, Simulation};
use serde::Serialize;
use std::time::Instant;

/// Counting global allocator when built with `--features count-allocs`,
/// so the `allocs` block carries measured allocs/round instead of null.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: ecp_telemetry::alloc_count::CountingAllocator =
    ecp_telemetry::alloc_count::CountingAllocator;

#[derive(Serialize)]
struct ScenarioTiming {
    id: String,
    samples: usize,
    scratch_ms: f64,
    incremental_ms: f64,
    speedup: f64,
    reports_identical: bool,
}

#[derive(Serialize)]
struct OverheadTiming {
    id: String,
    /// Untraced wall-clock (no-op sink statically compiled out), ms.
    baseline_ms: f64,
    /// Wall-clock with the JSONL sink recording every event, ms.
    traced_ms: f64,
    /// `traced / baseline - 1` (0 = free, 0.05 = 5 % slower).
    overhead_frac: f64,
    /// Events the traced run emitted.
    trace_events: usize,
    reports_identical: bool,
}

/// The telemetry-overhead block: the cost of running the te-stability
/// family with the JSONL sink on versus the default no-op sink. The
/// no-op path is the one golden hashes and the speedup numbers above
/// are measured on; this block pins that tracing is pay-as-you-go.
#[derive(Serialize)]
struct TelemetryOverhead {
    scenarios: Vec<OverheadTiming>,
    family_baseline_ms: f64,
    family_traced_ms: f64,
    family_overhead_frac: f64,
}

/// One policy's decision-path measurement: throughput of warmed,
/// sampling-free control rounds (pure observe→decide→apply on the
/// registry te-stability shape), plus — when the harness is built with
/// `--features count-allocs` — the heap allocations that path makes
/// per round (0.0 since the zero-alloc refactor; `null` without the
/// feature).
#[derive(Serialize)]
struct PolicyAllocs {
    id: String,
    /// Control rounds driven through the measured window.
    rounds: u64,
    /// Warmed decision-path control rounds per second.
    policy_rounds_per_s: f64,
    /// Heap allocations per round (needs `count-allocs`).
    allocs_per_round: Option<f64>,
    /// Heap bytes allocated per round (needs `count-allocs`).
    bytes_per_round: Option<f64>,
}

#[derive(Serialize)]
struct BenchFile {
    /// Schema tag; bump on layout changes.
    schema: &'static str,
    quick: bool,
    iters: usize,
    te_stability_duration_s: f64,
    te_stability_load: f64,
    /// Network/agent multiplier of the te-stability measurement points
    /// (`te_stability_scaled`): 1 = the golden-pinned registry shape.
    te_stability_scale: usize,
    /// The te-stability family: sustained-overload coupled flows on
    /// the PoP-access ISP, one entry per control policy. The regime
    /// the ≥5× (≥20× desync) end-to-end target is measured in.
    te_stability: Vec<ScenarioTiming>,
    /// Other representative simnet registry scenarios (CI-scaled).
    representative: Vec<ScenarioTiming>,
    min_te_stability_speedup: f64,
    /// Wall-clock of running the whole te-stability family end to end,
    /// before (scratch) and after (incremental + decision skipping).
    family_scratch_ms: f64,
    family_incremental_ms: f64,
    family_speedup: f64,
    /// Cost of turning the telemetry JSONL sink on (incremental mode).
    overhead: TelemetryOverhead,
    /// Per-policy decision-path throughput + allocation accounting.
    allocs: Vec<PolicyAllocs>,
}

/// Best-of-`iters` wall-clock of one scenario under one accounting
/// mode; returns (millis, last report).
fn time_mode(
    scenario: &ecp_scenario::Scenario,
    resolved: &ecp_scenario::ResolvedScenario,
    mode: LoadAccounting,
    iters: usize,
) -> (f64, ScenarioReport) {
    set_default_load_accounting(mode);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let report = run_resolved(scenario, resolved).expect("perf scenario runs");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    (best, last.expect("at least one iteration"))
}

fn time_scenario(
    id: &str,
    scenario: &ecp_scenario::Scenario,
    resolved: &ecp_scenario::ResolvedScenario,
    iters: usize,
) -> ScenarioTiming {
    // Untimed warmup: populates the resolution's lazy caches (the
    // max-feasible oracle probe) and the allocator, so both arms time
    // only the simulation even at --iters 1.
    let _ = run_resolved(scenario, resolved).expect("perf scenario runs");
    let (scratch_ms, scratch_report) =
        time_mode(scenario, resolved, LoadAccounting::Scratch, iters);
    let (incremental_ms, incremental_report) =
        time_mode(scenario, resolved, LoadAccounting::Incremental, iters);
    let identical = serde_json::to_string(&scratch_report).expect("report serializes")
        == serde_json::to_string(&incremental_report).expect("report serializes");
    assert!(
        identical,
        "{id}: incremental report diverged from the scratch oracle"
    );
    ScenarioTiming {
        id: id.to_string(),
        samples: incremental_report.samples,
        scratch_ms,
        incremental_ms,
        speedup: scratch_ms / incremental_ms.max(1e-9),
        reports_identical: identical,
    }
}

/// Sink-off vs JSONL-sink-on wall-clock of one scenario (incremental
/// accounting, best of `iters`). Asserts the serialized reports are
/// byte-identical: with `metrics.telemetry` unset, a traced run must
/// not perturb the report in any way.
fn time_overhead(
    id: &str,
    scenario: &ecp_scenario::Scenario,
    resolved: &ecp_scenario::ResolvedScenario,
    iters: usize,
) -> OverheadTiming {
    set_default_load_accounting(LoadAccounting::Incremental);
    let (baseline_ms, baseline_report) =
        time_mode(scenario, resolved, LoadAccounting::Incremental, iters);
    let mut traced_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let out = run_resolved_traced(scenario, resolved).expect("perf scenario runs traced");
        traced_ms = traced_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    let (traced_report, trace) = last.expect("at least one iteration");
    let identical = serde_json::to_string(&baseline_report).expect("report serializes")
        == serde_json::to_string(&traced_report).expect("report serializes");
    assert!(
        identical,
        "{id}: traced report diverged from the untraced run"
    );
    OverheadTiming {
        id: id.to_string(),
        baseline_ms,
        traced_ms,
        overhead_frac: traced_ms / baseline_ms.max(1e-9) - 1.0,
        trace_events: trace.lines.len(),
        reports_identical: identical,
    }
}

/// Measure one policy's warmed decision path on the registry
/// te-stability shape (unscaled, 44 gravity pairs): sampling is pushed
/// past the window so the measured events are control rounds only,
/// then `rounds` rounds are timed — and, with `count-allocs`, their
/// heap allocations counted.
fn time_decision_path(id: &str, control: &ControlSpec, rounds: u64) -> PolicyAllocs {
    set_default_load_accounting(LoadAccounting::Incremental);
    let scenario = ecp_bench::scenarios::te_stability(10.0, 0.7, *control);
    let resolved = ecp_scenario::resolve(&scenario).expect("perf scenario resolves");
    let cfg = SimConfig {
        control_interval: 0.5,
        wake_time: 5.0,
        detect_delay: 0.5,
        sleep_after: 2.0,
        sample_interval: 1e9,
        ..SimConfig::default()
    };
    let mut sim = Simulation::with_policy(
        &resolved.built.topo,
        &resolved.power,
        &resolved.tables,
        cfg,
        control.build(),
    );
    sim.set_load_accounting(LoadAccounting::Incremental);
    for &(o, d) in &resolved.pairs {
        sim.add_flow(&resolved.tables, o, d, 2e7);
    }
    sim.run_until(5.0);
    #[cfg(feature = "count-allocs")]
    let (a0, b0) = (
        ecp_telemetry::alloc_count::allocations(),
        ecp_telemetry::alloc_count::bytes_allocated(),
    );
    let t0 = Instant::now();
    sim.run_until(5.0 + rounds as f64 * 0.5);
    let dt = t0.elapsed().as_secs_f64();
    #[cfg(feature = "count-allocs")]
    let (allocs_per_round, bytes_per_round) = (
        Some((ecp_telemetry::alloc_count::allocations() - a0) as f64 / rounds as f64),
        Some((ecp_telemetry::alloc_count::bytes_allocated() - b0) as f64 / rounds as f64),
    );
    #[cfg(not(feature = "count-allocs"))]
    let (allocs_per_round, bytes_per_round) = (None, None);
    PolicyAllocs {
        id: id.to_string(),
        rounds,
        policy_rounds_per_s: rounds as f64 / dt.max(1e-9),
        allocs_per_round,
        bytes_per_round,
    }
}

fn main() {
    let quick: usize = arg("quick", 0);
    let quick = quick != 0;
    let iters: usize = arg("iters", if quick { 1 } else { 3 });
    let duration: f64 = arg("duration", if quick { 20.0 } else { 150.0 });
    let load: f64 = arg("load", 0.7);
    let scale: usize = arg("scale", if quick { 1 } else { 8 });
    let ceiling_s: f64 = arg("ceiling-s", 0.0);
    let out: String = arg("out", "BENCH_simnet.json".to_string());

    let decision_rounds: u64 = arg("decision-rounds", if quick { 400 } else { 4000 });

    let mut te_stability = Vec::new();
    let mut overhead_scenarios = Vec::new();
    let mut allocs = Vec::new();
    for (id, control) in ecp_bench::scenarios::te_stability_policies() {
        let scenario = ecp_bench::scenarios::te_stability_scaled(duration, load, control, scale);
        let resolved = ecp_scenario::resolve(&scenario).expect("perf scenario resolves");
        te_stability.push(time_scenario(id, &scenario, &resolved, iters));
        overhead_scenarios.push(time_overhead(id, &scenario, &resolved, iters));
        allocs.push(time_decision_path(id, &control, decision_rounds));
    }

    let representative_ids = [
        "fig7-click-adaptation",
        "fig8a-pop-access",
        "scenario-cascade-flashcrowd",
        "scenario-rolling-maintenance",
    ];
    let mut representative = Vec::new();
    for id in representative_ids {
        let scenario = ecp_bench::scenarios::campaign_scenario(id)
            .unwrap_or_else(|| panic!("unknown registry id {id}"));
        let resolved = ecp_scenario::resolve(&scenario).expect("perf scenario resolves");
        representative.push(time_scenario(id, &scenario, &resolved, iters));
    }

    let min_speedup = te_stability
        .iter()
        .map(|t| t.speedup)
        .fold(f64::INFINITY, f64::min);
    let family_scratch_ms: f64 = te_stability.iter().map(|t| t.scratch_ms).sum();
    let family_incremental_ms: f64 = te_stability.iter().map(|t| t.incremental_ms).sum();
    let family_speedup = family_scratch_ms / family_incremental_ms.max(1e-9);

    let rows: Vec<Vec<String>> = te_stability
        .iter()
        .chain(&representative)
        .map(|t| {
            vec![
                t.id.clone(),
                format!("{:.1}", t.scratch_ms),
                format!("{:.1}", t.incremental_ms),
                format!("{:.1}x", t.speedup),
            ]
        })
        .collect();
    print_table(
        &format!("end-to-end wall-clock, best of {iters} (scratch vs incremental)"),
        &["scenario", "scratch (ms)", "incremental (ms)", "speedup"],
        &rows,
    );
    println!("min te-stability speedup: {min_speedup:.1}x");
    println!(
        "te-stability family end-to-end: {family_scratch_ms:.0} ms scratch vs \
         {family_incremental_ms:.0} ms incremental ({family_speedup:.1}x)"
    );

    let family_baseline_ms: f64 = overhead_scenarios.iter().map(|t| t.baseline_ms).sum();
    let family_traced_ms: f64 = overhead_scenarios.iter().map(|t| t.traced_ms).sum();
    let family_overhead_frac = family_traced_ms / family_baseline_ms.max(1e-9) - 1.0;
    let overhead_rows: Vec<Vec<String>> = overhead_scenarios
        .iter()
        .map(|t| {
            vec![
                t.id.clone(),
                format!("{:.1}", t.baseline_ms),
                format!("{:.1}", t.traced_ms),
                format!("{:+.1}%", t.overhead_frac * 100.0),
                t.trace_events.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("telemetry overhead, best of {iters} (no-op sink vs JSONL sink)"),
        &["scenario", "off (ms)", "traced (ms)", "overhead", "events"],
        &overhead_rows,
    );
    println!(
        "telemetry family overhead: {family_baseline_ms:.0} ms off vs \
         {family_traced_ms:.0} ms traced ({:+.1}%)",
        family_overhead_frac * 100.0
    );
    let overhead = TelemetryOverhead {
        scenarios: overhead_scenarios,
        family_baseline_ms,
        family_traced_ms,
        family_overhead_frac,
    };

    let alloc_rows: Vec<Vec<String>> = allocs
        .iter()
        .map(|a| {
            vec![
                a.id.clone(),
                format!("{:.0}", a.policy_rounds_per_s),
                a.allocs_per_round
                    .map_or("n/a".to_string(), |v| format!("{v:.1}")),
                a.bytes_per_round
                    .map_or("n/a".to_string(), |v| format!("{v:.0}")),
            ]
        })
        .collect();
    print_table(
        &format!("decision path, warmed ({decision_rounds} sampling-free control rounds)"),
        &["policy", "rounds/s", "allocs/round", "bytes/round"],
        &alloc_rows,
    );

    if ceiling_s > 0.0 {
        for t in &te_stability {
            assert!(
                t.incremental_ms / 1e3 <= ceiling_s,
                "{} took {:.1} s incremental, over the {ceiling_s} s ceiling",
                t.id,
                t.incremental_ms / 1e3
            );
        }
        println!("ceiling ok: every te-stability run under {ceiling_s} s");
    }

    let file = BenchFile {
        schema: "ecp-bench-perf/3",
        quick,
        iters,
        te_stability_duration_s: duration,
        te_stability_load: load,
        te_stability_scale: scale,
        te_stability,
        representative,
        min_te_stability_speedup: min_speedup,
        family_scratch_ms,
        family_incremental_ms,
        family_speedup,
        overhead,
        allocs,
    };
    let body = serde_json::to_string_pretty(&file).expect("bench file serializes");
    std::fs::write(&out, body + "\n").expect("write bench file");
    println!("wrote {out}");
}
