//! Extension — opportunistic sleeping vs network-wide consolidation
//! (§2.1.1).
//!
//! The paper's background argues that per-element opportunistic sleeping
//! (Gupta & Singh: sleep in inter-packet gaps; Nedevschi et al.: buffer
//! upstream to lengthen the gaps) is limited, motivating network-wide
//! traffic shifting instead. Two packet-engine scenarios on the Fig-3
//! topology quantify that: traffic *spread* over all installed paths
//! (no REsPoNse) vs the consolidated always-on arrangement, each with
//! the gap-sleep analysis enabled.
//!
//! Usage: `--rate-mbps 2.5 --min-gap-ms 10 --wake-ms 10`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{run_scenario, SleepStats};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    spread_mean_sleep_fraction: f64,
    consolidated_sleeping_links: usize,
    total_links: usize,
    consolidated_sleep_fraction: f64,
}

fn sleep_of(rate: f64, min_gap: f64, wake: f64, spread: bool) -> SleepStats {
    run_scenario(&ecp_bench::scenarios::extension_opportunistic_sleep(
        rate, min_gap, wake, spread,
    ))
    .expect("extension_sleep scenario runs")
    .packet
    .expect("packet detail")
    .sleep
    .expect("sleep analysis selected")
}

fn main() {
    let rate: f64 = arg("rate-mbps", 2.5) * 1e6;
    let min_gap: f64 = arg("min-gap-ms", 10.0) * 1e-3;
    let wake: f64 = arg("wake-ms", 10.0) * 1e-3;

    let spread = sleep_of(rate, min_gap, wake, true);
    let consolidated = sleep_of(rate, min_gap, wake, false);
    let (dark, total_links) = (consolidated.dark_links, consolidated.total_links);

    print_table(
        "Opportunistic (per-gap) sleeping vs REsPoNse consolidation, Fig-3 topology",
        &[
            "arrangement",
            "mean link sleep fraction",
            "fully dark links",
        ],
        &[
            vec![
                "spread (no REsPoNse)".into(),
                format!("{:.1}%", 100.0 * spread.mean_sleep_fraction),
                "0".into(),
            ],
            vec![
                "consolidated (REsPoNse)".into(),
                format!("{:.1}%", 100.0 * consolidated.mean_sleep_fraction),
                format!("{dark}/{total_links}"),
            ],
        ],
    );
    println!(
        "\npaper (§2.1.1): inter-packet gaps are often too short to sleep in; buffering helps but"
    );
    println!("loses packets and burns energy on state switches — consolidation creates long idle periods instead.");
    println!(
        "measured: consolidation lifts the mean sleepable fraction from {:.1}% to {:.1}% and darkens {dark} links entirely.",
        100.0 * spread.mean_sleep_fraction,
        100.0 * consolidated.mean_sleep_fraction
    );

    write_json(
        "extension_opportunistic_sleep",
        &Out {
            spread_mean_sleep_fraction: spread.mean_sleep_fraction,
            consolidated_sleeping_links: dark,
            total_links,
            consolidated_sleep_fraction: consolidated.mean_sleep_fraction,
        },
    );
}
