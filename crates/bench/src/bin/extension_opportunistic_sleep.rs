//! Extension — opportunistic sleeping vs network-wide consolidation
//! (§2.1.1).
//!
//! The paper's background argues that per-element opportunistic sleeping
//! (Gupta & Singh: sleep in inter-packet gaps; Nedevschi et al.: buffer
//! upstream to lengthen the gaps) is limited, motivating network-wide
//! traffic shifting instead. We quantify that on the Fig-3 topology:
//! run packets through the engine with traffic *spread* over all paths
//! (no REsPoNse) and measure how much each link could sleep given a
//! minimum usable gap and a wake penalty; compare with the consolidated
//! REsPoNse arrangement where whole paths go idle.
//!
//! Usage: `--rate-mbps 2.5 --min-gap-ms 10 --wake-ms 10`

use ecp_bench::{arg, print_table, write_json};
use ecp_simnet::{run_packet_sim_full, CbrFlow, PacketSimConfig};
use ecp_topo::gen::fig3_click;
use ecp_topo::{Path, Topology};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    spread_mean_sleep_fraction: f64,
    consolidated_sleeping_links: usize,
    total_links: usize,
    consolidated_sleep_fraction: f64,
}

fn mean_sleep(topo: &Topology, act: &ecp_simnet::ArcActivity, min_gap: f64, wake: f64) -> f64 {
    let links: Vec<_> = topo.link_ids().collect();
    let mut acc = 0.0;
    for &l in &links {
        // A physical link sleeps only when BOTH directions are idle; we
        // approximate with the direction that sleeps less.
        let fwd = act.opportunistic_sleep_fraction(l.idx(), min_gap, wake);
        let rev = topo
            .reverse(l)
            .map(|r| act.opportunistic_sleep_fraction(r.idx(), min_gap, wake))
            .unwrap_or(fwd);
        // Links that carried nothing at all can sleep fully.
        let carried = act.busy_s[l.idx()] > 0.0
            || topo
                .reverse(l)
                .map(|r| act.busy_s[r.idx()] > 0.0)
                .unwrap_or(false);
        acc += if carried { fwd.min(rev) } else { 1.0 };
    }
    acc / links.len() as f64
}

fn main() {
    let rate: f64 = arg("rate-mbps", 2.5) * 1e6;
    let min_gap: f64 = arg("min-gap-ms", 10.0) * 1e-3;
    let wake: f64 = arg("wake-ms", 10.0) * 1e-3;

    let (topo, n) = fig3_click();
    let dur = 10.0;

    // Spread arrangement (no REsPoNse): each source splits across both
    // of its candidate paths.
    let spread = vec![
        CbrFlow {
            path: Path::new(vec![n.a, n.e, n.h, n.k]),
            rate_bps: rate / 2.0,
            start: 0.0,
            stop: dur,
        },
        CbrFlow {
            path: Path::new(vec![n.a, n.d, n.g, n.k]),
            rate_bps: rate / 2.0,
            start: 0.001,
            stop: dur,
        },
        CbrFlow {
            path: Path::new(vec![n.c, n.e, n.h, n.k]),
            rate_bps: rate / 2.0,
            start: 0.002,
            stop: dur,
        },
        CbrFlow {
            path: Path::new(vec![n.c, n.f, n.j, n.k]),
            rate_bps: rate / 2.0,
            start: 0.003,
            stop: dur,
        },
    ];
    let (_, act) = run_packet_sim_full(&topo, &spread, &PacketSimConfig::default(), dur * 2.0);
    let spread_sleep = mean_sleep(&topo, &act, min_gap, wake);

    // Consolidated arrangement (REsPoNse steady state): all traffic on
    // the middle paths; upper/lower fully dark.
    let consolidated = vec![
        CbrFlow {
            path: Path::new(vec![n.a, n.e, n.h, n.k]),
            rate_bps: rate,
            start: 0.0,
            stop: dur,
        },
        CbrFlow {
            path: Path::new(vec![n.c, n.e, n.h, n.k]),
            rate_bps: rate,
            start: 0.001,
            stop: dur,
        },
    ];
    let (_, act2) =
        run_packet_sim_full(&topo, &consolidated, &PacketSimConfig::default(), dur * 2.0);
    let total_links = topo.link_count();
    let dark = topo
        .link_ids()
        .filter(|l| {
            let fwd = act2.busy_s[l.idx()] > 0.0;
            let rev = topo
                .reverse(*l)
                .map(|r| act2.busy_s[r.idx()] > 0.0)
                .unwrap_or(false);
            !fwd && !rev
        })
        .count();
    let consolidated_sleep = mean_sleep(&topo, &act2, min_gap, wake);

    print_table(
        "Opportunistic (per-gap) sleeping vs REsPoNse consolidation, Fig-3 topology",
        &[
            "arrangement",
            "mean link sleep fraction",
            "fully dark links",
        ],
        &[
            vec![
                "spread (no REsPoNse)".into(),
                format!("{:.1}%", 100.0 * spread_sleep),
                "0".into(),
            ],
            vec![
                "consolidated (REsPoNse)".into(),
                format!("{:.1}%", 100.0 * consolidated_sleep),
                format!("{dark}/{total_links}"),
            ],
        ],
    );
    println!(
        "\npaper (§2.1.1): inter-packet gaps are often too short to sleep in; buffering helps but"
    );
    println!("loses packets and burns energy on state switches — consolidation creates long idle periods instead.");
    println!(
        "measured: consolidation lifts the mean sleepable fraction from {:.1}% to {:.1}% and darkens {dark} links entirely.",
        100.0 * spread_sleep,
        100.0 * consolidated_sleep
    );

    write_json(
        "extension_opportunistic_sleep",
        &Out {
            spread_mean_sleep_fraction: spread_sleep,
            consolidated_sleeping_links: dark,
            total_links,
            consolidated_sleep_fraction: consolidated_sleep,
        },
    );
}
