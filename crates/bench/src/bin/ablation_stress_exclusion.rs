//! Ablation — stress-factor link-exclusion fraction (§4.2).
//!
//! Paper: "Our sensitivity analysis shows that excluding 20% of the
//! links with the highest stress is sufficient to produce a set of paths
//! that together with the always-on paths can accommodate peak-hour
//! traffic demands."
//!
//! We sweep the exclusion fraction and report (a) the max volume the
//! combined tables support and (b) the idle power of the always-on +
//! first-on-demand activation.
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_topo::gen::geant;
use ecp_traffic::{gravity_matrix, random_od_pairs};
use respons_core::replay::place_matrix;
use respons_core::{OnDemandStrategy, Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    exclude_fraction: f64,
    placed_fraction_at_peak: f64,
    peak_power_frac: f64,
    distinct_on_demand_fraction: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let topo = geant();
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let te = TeConfig {
        threshold: 1.0,
        ..Default::default()
    };
    // Peak-hour demand: 85% of the free-routing maximum — hard enough
    // that poor on-demand choices cannot hide behind spare capacity.
    let oc = ecp_routing::OracleConfig::default();
    let peak_tm = gravity_matrix(
        &topo,
        &pairs,
        ecp_bench::max_feasible_volume(&topo, &pairs, &oc) * 0.85,
    );
    let full = pm.full_power(&topo);

    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for &f in &fractions {
        eprintln!("planning with exclusion fraction {f}...");
        let cfg = PlannerConfig {
            strategy: OnDemandStrategy::StressFactor {
                exclude_fraction: f,
            },
            ..Default::default()
        };
        let tables = Planner::new(&topo, &pm).plan_pairs(&cfg, &pairs);
        let (active, placed, _, _) = place_matrix(&topo, &tables, &peak_tm, &te);
        let peak_power = pm.network_power(&topo, &active) / full;
        let distinct = tables
            .iter()
            .filter(|(_, p)| {
                p.on_demand
                    .first()
                    .map(|od| od != &p.always_on)
                    .unwrap_or(false)
            })
            .count() as f64
            / tables.len().max(1) as f64;
        rows.push(vec![
            format!("{:.0}%", 100.0 * f),
            format!("{:.1}%", 100.0 * placed),
            format!("{:.1}%", 100.0 * peak_power),
            format!("{:.0}%", 100.0 * distinct),
        ]);
        out.push(Row {
            exclude_fraction: f,
            placed_fraction_at_peak: placed,
            peak_power_frac: peak_power,
            distinct_on_demand_fraction: distinct,
        });
    }
    print_table(
        "Ablation: stress-factor exclusion fraction (GEANT-like, peak-hour demand)",
        &[
            "excluded links",
            "peak traffic placed",
            "peak power",
            "distinct on-demand paths",
        ],
        &rows,
    );
    let at20 = out
        .iter()
        .find(|r| (r.exclude_fraction - 0.2).abs() < 1e-9)
        .unwrap();
    let best = out
        .iter()
        .map(|r| r.placed_fraction_at_peak)
        .fold(0.0, f64::max);
    println!(
        "\npaper: 20% exclusion suffices for peak demands   measured: 20% places {:.1}% of peak (best sweep value {:.1}%)",
        100.0 * at20.placed_fraction_at_peak,
        100.0 * best
    );

    write_json("ablation_stress_exclusion", &out);
}
