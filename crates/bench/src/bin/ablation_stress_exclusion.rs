//! Ablation — stress-factor link-exclusion fraction (§4.2).
//!
//! Paper: "Our sensitivity analysis shows that excluding 20% of the
//! links with the highest stress is sufficient to produce a set of paths
//! that together with the always-on paths can accommodate peak-hour
//! traffic demands."
//!
//! A `SweepRunner` grid over the `exclude_fraction` axis of the
//! peak-hour replay with `table_stats`; this binary only formats output.
//!
//! Usage: `--pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{Axis, Param, SweepRunner};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    exclude_fraction: f64,
    placed_fraction_at_peak: f64,
    peak_power_frac: f64,
    distinct_on_demand_fraction: f64,
}

fn main() {
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let base = ecp_bench::scenarios::ablation_base("ablation-stress-exclusion", pairs_n, seed);
    let sweep = SweepRunner::new(
        base,
        vec![Axis::new(
            Param::ExcludeFraction,
            [0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
        )],
    );
    eprintln!("sweeping the exclusion fraction over the planner (parallel)...");
    let result = sweep.run().expect("stress-exclusion sweep runs");

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for row in &result.rows {
        let f = row.params[0].1;
        let ts = row.report.table_stats.expect("table_stats selected");
        let placed = row.report.mean_delivered_fraction;
        let peak_power = row.report.mean_power_frac;
        rows.push(vec![
            format!("{:.0}%", 100.0 * f),
            format!("{:.1}%", 100.0 * placed),
            format!("{:.1}%", 100.0 * peak_power),
            format!("{:.0}%", 100.0 * ts.distinct_on_demand_fraction),
        ]);
        out.push(Row {
            exclude_fraction: f,
            placed_fraction_at_peak: placed,
            peak_power_frac: peak_power,
            distinct_on_demand_fraction: ts.distinct_on_demand_fraction,
        });
    }
    print_table(
        "Ablation: stress-factor exclusion fraction (GEANT-like, peak-hour demand)",
        &[
            "excluded links",
            "peak traffic placed",
            "peak power",
            "distinct on-demand paths",
        ],
        &rows,
    );
    let at20 = out
        .iter()
        .find(|r| (r.exclude_fraction - 0.2).abs() < 1e-9)
        .unwrap();
    let best = out
        .iter()
        .map(|r| r.placed_fraction_at_peak)
        .fold(0.0, f64::max);
    println!(
        "\npaper: 20% exclusion suffices for peak demands   measured: 20% places {:.1}% of peak (best sweep value {:.1}%)",
        100.0 * at20.placed_fraction_at_peak,
        100.0 * best
    );

    write_json("ablation_stress_exclusion", &out);
}
