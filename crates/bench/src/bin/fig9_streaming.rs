//! Figure 9 — media streaming over REsPoNse-chosen paths.
//!
//! Paper (§5.4): 50 clients stream 600 kbps from a source on Abovenet;
//! 50 more join later, forcing on-demand paths to activate. The
//! percentage of clients that can play the video is essentially the same
//! under REsPoNse-lat and OSPF-InvCap at both load levels, and the
//! average block retrieval latency increases by about 5%.
//!
//! Box-plot statistics come from repeated seeded runs.
//!
//! Usage: `--clients 50 --duration 120 --runs 3`

use ecp_apps::{run_streaming, tables_from_routes, StreamingConfig};
use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::ospf_invcap;
use ecp_simnet::SimConfig;
use ecp_topo::gen::abovenet;
use ecp_topo::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use respons_core::{Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize, Clone, Copy)]
struct BoxStat {
    min: f64,
    mean: f64,
    max: f64,
}

fn boxstat(v: &[f64]) -> BoxStat {
    BoxStat {
        min: v.iter().cloned().fold(f64::INFINITY, f64::min),
        mean: v.iter().sum::<f64>() / v.len().max(1) as f64,
        max: v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[derive(Serialize)]
struct Out {
    rep_lat_50: BoxStat,
    invcap_50: BoxStat,
    rep_lat_100: BoxStat,
    invcap_100: BoxStat,
    block_latency_increase_pct: f64,
    rep_power_frac: f64,
    invcap_power_frac: f64,
}

fn main() {
    let clients_n: usize = arg("clients", 50);
    let duration: f64 = arg("duration", 120.0);
    let runs: usize = arg("runs", 3);

    let topo = abovenet();
    let pm = PowerModel::cisco12000();
    let server = NodeId(0);
    let others: Vec<NodeId> = topo.node_ids().filter(|&n| n != server).collect();
    let pairs: Vec<(NodeId, NodeId)> = others.iter().map(|&n| (server, n)).collect();

    // REsPoNse-lat tables (the §5.4 configuration) and the InvCap
    // baseline.
    eprintln!("planning REsPoNse-lat tables on Abovenet...");
    let planner = Planner::new(&topo, &pm);
    let t_rep = planner.plan_pairs(
        &PlannerConfig {
            beta: Some(0.25),
            ..Default::default()
        },
        &pairs,
    );
    let t_inv = tables_from_routes(&ospf_invcap(&topo, &pairs, None));

    let sim_cfg = SimConfig {
        te: TeConfig::default(),
        control_interval: 0.2,
        wake_time: 0.1,
        detect_delay: 0.2,
        sleep_after: 1.0,
        sample_interval: 0.5,
        te_start: 0.0,
    };
    let stream_cfg = StreamingConfig {
        duration,
        ..Default::default()
    };

    let mut stats: Vec<Vec<f64>> = vec![Vec::new(); 4]; // replat50 inv50 replat100 inv100
    let mut lat_rep = Vec::new();
    let mut lat_inv = Vec::new();
    let mut pow_rep = Vec::new();
    let mut pow_inv = Vec::new();
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(run as u64 + 7);
        // First wave at t=0, second at duration/2 (scaled from the
        // paper's 300 s on a 600+ s run).
        let mut placement: Vec<(NodeId, f64)> = (0..clients_n)
            .map(|_| (others[rng.gen_range(0..others.len())], 0.0))
            .collect();
        placement.extend(
            (0..clients_n).map(|_| (others[rng.gen_range(0..others.len())], duration / 2.0)),
        );

        for (tables, s50, s100, lat_sink, pow_sink) in [
            (&t_rep, 0usize, 2usize, &mut lat_rep, &mut pow_rep),
            (&t_inv, 1, 3, &mut lat_inv, &mut pow_inv),
        ] {
            eprintln!(
                "run {run}: streaming over {} tables...",
                if s50 == 0 { "REsPoNse-lat" } else { "InvCap" }
            );
            let res = run_streaming(
                &topo,
                &pm,
                tables,
                server,
                &placement,
                &stream_cfg,
                &sim_cfg,
            );
            // 50-client level: only first-wave clients, judged over the
            // whole run... paper plots per-phase; approximate by early
            // joiners vs all.
            stats[s50].push(res.playable_percent_where(|c| c.joined_at == 0.0));
            stats[s100].push(res.playable_percent());
            lat_sink.push(res.mean_block_latency());
            pow_sink.push(res.mean_power_fraction);
        }
    }

    let bs: Vec<BoxStat> = stats.iter().map(|v| boxstat(v)).collect();
    let rows: Vec<Vec<String>> = ["REP-lat50", "InvCap50", "REP-lat100", "InvCap100"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                name.to_string(),
                format!("{:.1}", bs[i].min),
                format!("{:.1}", bs[i].mean),
                format!("{:.1}", bs[i].max),
            ]
        })
        .collect();
    print_table(
        "Fig 9: % of clients able to play the video (box over runs)",
        &["", "min", "mean", "max"],
        &rows,
    );
    let mlr = lat_rep.iter().sum::<f64>() / lat_rep.len() as f64;
    let mli = lat_inv.iter().sum::<f64>() / lat_inv.len() as f64;
    let lat_incr = 100.0 * (mlr - mli) / mli;
    let prf = pow_rep.iter().sum::<f64>() / pow_rep.len() as f64;
    let pif = pow_inv.iter().sum::<f64>() / pow_inv.len() as f64;
    println!("\npaper: playable % essentially equal across schemes; block latency +~5% under REsPoNse-lat");
    println!(
        "measured: block latency +{lat_incr:.1}%; power REsPoNse-lat {:.1}% vs InvCap {:.1}%",
        100.0 * prf,
        100.0 * pif
    );

    write_json(
        "fig9_streaming",
        &Out {
            rep_lat_50: bs[0],
            invcap_50: bs[1],
            rep_lat_100: bs[2],
            invcap_100: bs[3],
            block_latency_increase_pct: lat_incr,
            rep_power_frac: prf,
            invcap_power_frac: pif,
        },
    );
}
