//! Figure 9 — media streaming over REsPoNse-chosen paths.
//!
//! Paper (§5.4): 50 clients stream 600 kbps from a source on Abovenet;
//! 50 more join later, forcing on-demand paths to activate. The
//! percentage of clients that can play the video is essentially the same
//! under REsPoNse-lat and OSPF-InvCap at both load levels, and the
//! average block retrieval latency increases by about 5%.
//!
//! Two app-engine scenarios (REsPoNse-lat vs OSPF-InvCap tables) with
//! identical seeded client placements; box-plot statistics come from the
//! per-run report entries.
//!
//! Usage: `--clients 50 --duration 120 --runs 3`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{run_scenario, AppDetail, StreamingRunStats};
use serde::Serialize;

#[derive(Serialize, Clone, Copy)]
struct BoxStat {
    min: f64,
    mean: f64,
    max: f64,
}

fn boxstat(v: &[f64]) -> BoxStat {
    BoxStat {
        min: v.iter().cloned().fold(f64::INFINITY, f64::min),
        mean: v.iter().sum::<f64>() / v.len().max(1) as f64,
        max: v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[derive(Serialize)]
struct Out {
    rep_lat_50: BoxStat,
    invcap_50: BoxStat,
    rep_lat_100: BoxStat,
    invcap_100: BoxStat,
    block_latency_increase_pct: f64,
    rep_power_frac: f64,
    invcap_power_frac: f64,
}

fn streaming_runs(report: ecp_scenario::ScenarioReport) -> Vec<StreamingRunStats> {
    match report.app {
        Some(AppDetail::Streaming { runs }) => runs,
        _ => panic!("fig9 expects a streaming report"),
    }
}

fn main() {
    let clients_n: usize = arg("clients", 50);
    let duration: f64 = arg("duration", 120.0);
    let runs: usize = arg("runs", 3);

    eprintln!("streaming over REsPoNse-lat tables ({runs} runs)...");
    let rep = streaming_runs(
        run_scenario(&ecp_bench::scenarios::fig9(
            clients_n, duration, runs, false,
        ))
        .expect("fig9 REsPoNse-lat scenario runs"),
    );
    eprintln!("streaming over InvCap tables ({runs} runs)...");
    let inv = streaming_runs(
        run_scenario(&ecp_bench::scenarios::fig9(clients_n, duration, runs, true))
            .expect("fig9 InvCap scenario runs"),
    );

    // 50-client level: first-wave clients judged over the whole run;
    // 100-client level: all clients (paper plots per phase; approximated
    // by early joiners vs all).
    let first_wave = |rs: &[StreamingRunStats]| -> Vec<f64> {
        rs.iter().map(|r| r.wave_playable_pct[0]).collect()
    };
    let overall =
        |rs: &[StreamingRunStats]| -> Vec<f64> { rs.iter().map(|r| r.playable_pct).collect() };
    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let bs = [
        boxstat(&first_wave(&rep)),
        boxstat(&first_wave(&inv)),
        boxstat(&overall(&rep)),
        boxstat(&overall(&inv)),
    ];

    let rows: Vec<Vec<String>> = ["REP-lat50", "InvCap50", "REP-lat100", "InvCap100"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                name.to_string(),
                format!("{:.1}", bs[i].min),
                format!("{:.1}", bs[i].mean),
                format!("{:.1}", bs[i].max),
            ]
        })
        .collect();
    print_table(
        "Fig 9: % of clients able to play the video (box over runs)",
        &["", "min", "mean", "max"],
        &rows,
    );
    let mlr = mean(rep.iter().map(|r| r.mean_block_latency_s).collect());
    let mli = mean(inv.iter().map(|r| r.mean_block_latency_s).collect());
    let lat_incr = 100.0 * (mlr - mli) / mli;
    let prf = mean(rep.iter().map(|r| r.mean_power_fraction).collect());
    let pif = mean(inv.iter().map(|r| r.mean_power_fraction).collect());
    println!("\npaper: playable % essentially equal across schemes; block latency +~5% under REsPoNse-lat");
    println!(
        "measured: block latency +{lat_incr:.1}%; power REsPoNse-lat {:.1}% vs InvCap {:.1}%",
        100.0 * prf,
        100.0 * pif
    );

    write_json(
        "fig9_streaming",
        &Out {
            rep_lat_50: bs[0],
            invcap_50: bs[1],
            rep_lat_100: bs[2],
            invcap_100: bs[3],
            block_latency_increase_pct: lat_incr,
            rep_power_frac: prf,
            invcap_power_frac: pif,
        },
    );
}
