//! §5.4 in-text result — web retrieval latency under REsPoNse vs
//! OSPF-InvCap.
//!
//! Paper: "The web retrieval latency increases by only 9% when we switch
//! from OSPF-InvCap to REsPoNse." One stub node serves; four stub nodes
//! run httperf-like closed loops over 100 SPECweb2005-banking-like
//! files.
//!
//! Usage: `--requests 40 --seed 2005`

use ecp_apps::{run_web, tables_from_routes, WebConfig};
use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::ospf_invcap;
use ecp_simnet::SimConfig;
use ecp_topo::gen::abovenet;
use ecp_topo::NodeId;
use respons_core::{Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    rep_mean_latency_s: f64,
    invcap_mean_latency_s: f64,
    latency_increase_pct: f64,
    rep_p95_s: f64,
    invcap_p95_s: f64,
    rep_power_frac: f64,
    invcap_power_frac: f64,
}

fn main() {
    let requests: usize = arg("requests", 40);
    let seed: u64 = arg("seed", 2005);

    let topo = abovenet();
    let pm = PowerModel::cisco12000();
    // One server + four client stubs, all low-degree nodes ("stub
    // nodes").
    let mut by_degree: Vec<NodeId> = topo.node_ids().collect();
    by_degree.sort_by_key(|&n| topo.degree(n));
    let server = by_degree[0];
    let clients: Vec<NodeId> = by_degree[1..5].to_vec();
    let pairs: Vec<(NodeId, NodeId)> = clients.iter().map(|&c| (server, c)).collect();

    eprintln!("planning tables...");
    // Plain REsPoNse (the paper's wording: "when we switch from
    // OSPF-InvCap to REsPoNse"); without the latency bound the
    // min-power paths may stretch, which is exactly what the +9% result
    // measures. The operator plans tables for *all* PoP pairs — the web
    // application then uses the (server, client) entries of that
    // network-wide plan.
    let t_rep = Planner::new(&topo, &pm).plan(&PlannerConfig::default());
    let t_inv = tables_from_routes(&ospf_invcap(&topo, &pairs, None));

    let cfg = WebConfig {
        requests_per_client: requests,
        seed,
        ..Default::default()
    };
    let sim_cfg = SimConfig {
        te: TeConfig::default(),
        control_interval: 0.1,
        wake_time: 0.05,
        detect_delay: 0.1,
        sleep_after: 0.5,
        sample_interval: 0.2,
        te_start: 0.0,
    };
    eprintln!("running web workload over REsPoNse...");
    let rep = run_web(&topo, &pm, &t_rep, server, &clients, &cfg, &sim_cfg);
    eprintln!("running web workload over InvCap...");
    let inv = run_web(&topo, &pm, &t_inv, server, &clients, &cfg, &sim_cfg);

    let incr = 100.0 * (rep.mean_latency() - inv.mean_latency()) / inv.mean_latency();
    print_table(
        "Web retrieval latency (SPECweb-like workload, Abovenet)",
        &["scheme", "mean (ms)", "p95 (ms)", "requests", "power"],
        &[
            vec![
                "OSPF-InvCap".into(),
                format!("{:.1}", 1e3 * inv.mean_latency()),
                format!("{:.1}", 1e3 * inv.percentile(95.0)),
                inv.latencies.len().to_string(),
                format!("{:.1}%", 100.0 * inv.mean_power_fraction),
            ],
            vec![
                "REsPoNse".into(),
                format!("{:.1}", 1e3 * rep.mean_latency()),
                format!("{:.1}", 1e3 * rep.percentile(95.0)),
                rep.latencies.len().to_string(),
                format!("{:.1}%", 100.0 * rep.mean_power_fraction),
            ],
        ],
    );
    println!("\npaper: +9% web retrieval latency   measured: {incr:+.1}%");

    write_json(
        "text_web_latency",
        &Out {
            rep_mean_latency_s: rep.mean_latency(),
            invcap_mean_latency_s: inv.mean_latency(),
            latency_increase_pct: incr,
            rep_p95_s: rep.percentile(95.0),
            invcap_p95_s: inv.percentile(95.0),
            rep_power_frac: rep.mean_power_fraction,
            invcap_power_frac: inv.mean_power_fraction,
        },
    );
}
