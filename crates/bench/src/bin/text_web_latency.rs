//! §5.4 in-text result — web retrieval latency under REsPoNse vs
//! OSPF-InvCap.
//!
//! Paper: "The web retrieval latency increases by only 9% when we switch
//! from OSPF-InvCap to REsPoNse." One stub node serves; four stub nodes
//! run httperf-like closed loops over 100 SPECweb2005-banking-like
//! files.
//!
//! Two app-engine scenarios differing only in their tables; this binary
//! only formats output.
//!
//! Usage: `--requests 40 --seed 2005`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{run_scenario, AppDetail};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    rep_mean_latency_s: f64,
    invcap_mean_latency_s: f64,
    latency_increase_pct: f64,
    rep_p95_s: f64,
    invcap_p95_s: f64,
    rep_power_frac: f64,
    invcap_power_frac: f64,
}

struct WebRun {
    mean: f64,
    p95: f64,
    requests: usize,
    power: f64,
}

fn web_run(invcap: bool, requests: usize, seed: u64) -> WebRun {
    let report = run_scenario(&ecp_bench::scenarios::text_web(requests, seed, invcap))
        .expect("text_web scenario runs");
    match report.app {
        Some(AppDetail::Web {
            latencies,
            mean_latency_s,
            p95_latency_s,
            mean_power_fraction,
            ..
        }) => WebRun {
            mean: mean_latency_s,
            p95: p95_latency_s,
            requests: latencies.len(),
            power: mean_power_fraction,
        },
        _ => panic!("text_web expects a web report"),
    }
}

fn main() {
    let requests: usize = arg("requests", 40);
    let seed: u64 = arg("seed", 2005);

    eprintln!("running web workload over REsPoNse...");
    let rep = web_run(false, requests, seed);
    eprintln!("running web workload over InvCap...");
    let inv = web_run(true, requests, seed);

    let incr = 100.0 * (rep.mean - inv.mean) / inv.mean;
    print_table(
        "Web retrieval latency (SPECweb-like workload, Abovenet)",
        &["scheme", "mean (ms)", "p95 (ms)", "requests", "power"],
        &[
            vec![
                "OSPF-InvCap".into(),
                format!("{:.1}", 1e3 * inv.mean),
                format!("{:.1}", 1e3 * inv.p95),
                inv.requests.to_string(),
                format!("{:.1}%", 100.0 * inv.power),
            ],
            vec![
                "REsPoNse".into(),
                format!("{:.1}", 1e3 * rep.mean),
                format!("{:.1}", 1e3 * rep.p95),
                rep.requests.to_string(),
                format!("{:.1}%", 100.0 * rep.power),
            ],
        ],
    );
    println!("\npaper: +9% web retrieval latency   measured: {incr:+.1}%");

    write_json(
        "text_web_latency",
        &Out {
            rep_mean_latency_s: rep.mean,
            invcap_mean_latency_s: inv.mean,
            latency_increase_pct: incr,
            rep_p95_s: rep.p95,
            invcap_p95_s: inv.p95,
            rep_power_frac: rep.power,
            invcap_power_frac: inv.power,
        },
    );
}
