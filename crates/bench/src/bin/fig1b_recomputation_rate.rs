//! Figure 1b — recomputation rate of state-of-the-art approaches on a
//! GÉANT traffic replay.
//!
//! Paper: "the recomputation rate for existing approaches goes up to
//! four per hour (the maximum possible for our trace), even for the
//! 15-minute interval granularity."
//!
//! We recompute the minimal network subset (the `optimal` scheme) for
//! every 15-minute matrix of the GÉANT-like trace and count the
//! intervals whose active element set changed.
//!
//! Usage: `--days 15 --pairs 150 --seed 1 --volume-frac 0.6`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::oracle::OracleConfig;
use ecp_routing::recompute::recomputation_rate;
use ecp_routing::subset::optimal_subset;
use ecp_topo::gen::geant;
use ecp_traffic::{geant_like_trace, random_od_pairs};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    pairs: usize,
    total_changes: usize,
    mean_rate_per_hour: f64,
    max_rate_per_hour: f64,
    hourly_rate: Vec<f64>,
    optimizer_failures: usize,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);
    let volume_frac: f64 = arg("volume-frac", 0.5);

    let topo = geant();
    let pairs = random_od_pairs(&topo, pairs_n, seed);
    let oc = OracleConfig::default();
    let peak_volume = ecp_bench::max_feasible_volume(&topo, &pairs, &oc) * volume_frac;
    let trace = geant_like_trace(&topo, &pairs, days, peak_volume, seed);
    let pm = PowerModel::cisco12000();

    eprintln!(
        "replaying {} intervals ({} days), recomputing the optimal subset each time...",
        trace.len(),
        days
    );
    let rep = recomputation_rate(&topo, &trace, |tm| optimal_subset(&topo, &pm, tm, &oc));

    let hourly = rep.hourly_rate();
    let max_rate = hourly.iter().cloned().fold(0.0, f64::max);
    // Print a daily summary (360 hourly samples would be unreadable).
    let rows: Vec<Vec<String>> = hourly
        .chunks(24)
        .enumerate()
        .map(|(d, day)| {
            let mean = day.iter().sum::<f64>() / day.len() as f64;
            let max = day.iter().cloned().fold(0.0, f64::max);
            vec![
                format!("day {}", d + 1),
                format!("{mean:.2}"),
                format!("{max:.0}"),
            ]
        })
        .collect();
    print_table(
        "Fig 1b: routing-table recomputation rate (optimal scheme, GEANT-like replay)",
        &["", "mean recomputations/hour", "max/hour"],
        &rows,
    );
    println!(
        "\npaper: rate goes up to 4/hour (trace-granularity bound)   measured max: {max_rate:.0}/hour, mean: {:.2}/hour",
        rep.mean_rate_per_hour()
    );

    write_json(
        "fig1b_recomputation_rate",
        &Out {
            days,
            pairs: pairs_n,
            total_changes: rep.total_changes(),
            mean_rate_per_hour: rep.mean_rate_per_hour(),
            max_rate_per_hour: max_rate,
            hourly_rate: hourly,
            optimizer_failures: rep.failures,
        },
    );
}
