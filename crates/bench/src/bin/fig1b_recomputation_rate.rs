//! Figure 1b — recomputation rate of state-of-the-art approaches on a
//! GÉANT traffic replay.
//!
//! Paper: "the recomputation rate for existing approaches goes up to
//! four per hour (the maximum possible for our trace), even for the
//! 15-minute interval granularity."
//!
//! The scenario replays the GÉANT-like trace in `Recompute` mode
//! (optimal subset per interval); this binary only formats output.
//!
//! Usage: `--days 15 --pairs 150 --seed 1 --volume-frac 0.5`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    days: usize,
    pairs: usize,
    total_changes: usize,
    mean_rate_per_hour: f64,
    max_rate_per_hour: f64,
    hourly_rate: Vec<f64>,
    optimizer_failures: usize,
}

fn main() {
    let days: usize = arg("days", 15);
    let pairs_n: usize = arg("pairs", 150);
    let seed: u64 = arg("seed", 1);
    let volume_frac: f64 = arg("volume-frac", 0.5);

    let scenario =
        ecp_bench::scenarios::optimal_recompute_geant("fig1b", days, pairs_n, volume_frac, seed);
    eprintln!("replaying {days} days, recomputing the optimal subset each interval...");
    let report = run_scenario(&scenario).expect("fig1b scenario runs");
    let rec = report
        .replay
        .and_then(|r| r.recompute)
        .expect("Recompute mode yields rates");

    let hourly = rec.hourly_rate;
    let max_rate = hourly.iter().cloned().fold(0.0, f64::max);
    // Print a daily summary (360 hourly samples would be unreadable).
    let rows: Vec<Vec<String>> = hourly
        .chunks(24)
        .enumerate()
        .map(|(d, day)| {
            let mean = day.iter().sum::<f64>() / day.len() as f64;
            let max = day.iter().cloned().fold(0.0, f64::max);
            vec![
                format!("day {}", d + 1),
                format!("{mean:.2}"),
                format!("{max:.0}"),
            ]
        })
        .collect();
    print_table(
        "Fig 1b: routing-table recomputation rate (optimal scheme, GEANT-like replay)",
        &["", "mean recomputations/hour", "max/hour"],
        &rows,
    );
    println!(
        "\npaper: rate goes up to 4/hour (trace-granularity bound)   measured max: {max_rate:.0}/hour, mean: {:.2}/hour",
        rec.mean_rate_per_hour
    );

    write_json(
        "fig1b_recomputation_rate",
        &Out {
            days,
            pairs: pairs_n,
            total_changes: rec.total_changes,
            mean_rate_per_hour: rec.mean_rate_per_hour,
            max_rate_per_hour: max_rate,
            hourly_rate: hourly,
            optimizer_failures: rec.failures,
        },
    );
}
