//! Figure 7 — Click-testbed adaptation experiment.
//!
//! Paper (§5.3): 9 routers in the Fig.-3 topology (no B), 10 Mbps /
//! 16.67 ms links; A and C each send 5 flows (~2.5 Mbps each aggregate)
//! toward K over two candidate paths. REsPoNseTE starts at t = 5 s and
//! within ~200 ms (2 RTTs) consolidates traffic on the middle always-on
//! path, letting the upper/lower links sleep. At t = 5.7 s the middle
//! link fails; detection + propagation takes 100 ms and waking a link
//! 10 ms, after which the on-demand/failover paths carry the traffic.
//!
//! Ported to the declarative scenario engine: the whole experiment is
//! one `ecp_scenario::Scenario` value; this binary only formats output.
//!
//! Usage: `--duration 8`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    /// (t, middle, upper, lower) delivered rates in Mbps.
    series: Vec<(f64, f64, f64, f64)>,
    consolidation_done_at: Option<f64>,
    failure_at: f64,
    restored_at: Option<f64>,
    restore_latency_ms: Option<f64>,
}

fn main() {
    let duration: f64 = arg("duration", 8.0);

    let scenario = ecp_bench::scenarios::fig7(duration);
    let report = run_scenario(&scenario).expect("fig7 scenario runs");

    // Extract the three series: middle = sum of always-on paths, upper =
    // A's on-demand, lower = C's on-demand.
    let samples = report.per_path_samples.as_deref().unwrap_or_default();
    let series: Vec<(f64, f64, f64, f64)> = samples
        .iter()
        .map(|s| {
            let middle = s.per_flow_path_rates[0][0] + s.per_flow_path_rates[1][0];
            let upper = s.per_flow_path_rates[0][1];
            let lower = s.per_flow_path_rates[1][1];
            (s.t, middle / 1e6, upper / 1e6, lower / 1e6)
        })
        .collect();

    let consolidated = series
        .iter()
        .find(|&&(t, m, u, l)| t >= 5.0 && m > 4.5 && u < 0.1 && l < 0.1)
        .map(|&(t, ..)| t);
    let restored = series
        .iter()
        .find(|&&(t, _, u, l)| t >= 5.7 && (u + l) > 4.5)
        .map(|&(t, ..)| t);

    let rows: Vec<Vec<String>> = series
        .iter()
        .filter(|&&(t, ..)| (4.0..=7.0).contains(&t))
        .step_by(2)
        .map(|&(t, m, u, l)| {
            vec![
                format!("{t:.2}"),
                format!("{m:.2}"),
                format!("{u:.2}"),
                format!("{l:.2}"),
            ]
        })
        .collect();
    print_table(
        "Fig 7: per-path rates (Mbps) around TE start (t=5) and failure (t=5.7)",
        &["t (s)", "middle", "upper", "lower"],
        &rows,
    );
    println!(
        "\npaper: consolidation ~200 ms after t=5; failover restores traffic after ~110 ms + RTTs"
    );
    match (consolidated, restored) {
        (Some(c), Some(r)) => println!(
            "measured: consolidated at t={c:.2}s ({:.0} ms after TE start); restored at t={r:.2}s ({:.0} ms after failure)",
            (c - 5.0) * 1e3,
            (r - 5.7) * 1e3
        ),
        _ => println!("measured: consolidation={consolidated:?} restored={restored:?}"),
    }

    write_json(
        "fig7_click_adaptation",
        &Out {
            series,
            consolidation_done_at: consolidated,
            failure_at: 5.7,
            restored_at: restored,
            restore_latency_ms: restored.map(|r| (r - 5.7) * 1e3),
        },
    );
}
