//! Figure 6 — power at util-10/50/100 on the Genuity topology.
//!
//! Paper: savings ~30% at low utilization; REsPoNse and REsPoNse-lat
//! progressively activate resources as utilization grows;
//! REsPoNse-heuristic saves more at high load (traffic-aware);
//! REsPoNse-ospf still exhibits energy proportionality; Optimal bounds
//! them all from below.
//!
//! Usage: `--pairs 160 --nodes 26 --seed 1`

use ecp_bench::{arg, gravity_at_utilization, print_table, write_json};
use ecp_power::PowerModel;
use ecp_routing::subset::optimal_subset;
use ecp_routing::OracleConfig;
use ecp_topo::gen::genuity;
use ecp_traffic::random_od_pairs_subset;
use respons_core::replay::place_matrix;
use respons_core::{OnDemandStrategy, Planner, PlannerConfig, TeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    utils: Vec<f64>,
    /// scheme -> power fraction per utilization level
    response_lat: Vec<f64>,
    response: Vec<f64>,
    response_ospf: Vec<f64>,
    response_heuristic: Vec<f64>,
    optimal: Vec<f64>,
}

fn main() {
    let pairs_n: usize = arg("pairs", 160);
    let nodes_n: usize = arg("nodes", 26);
    let seed: u64 = arg("seed", 1);
    let utils = [10.0, 50.0, 100.0];

    let topo = genuity();
    let pm = PowerModel::cisco12000();
    let oc = OracleConfig::default();
    // Random subset of PoPs as origins/destinations (paper methodology,
    // "we select the origins and destinations at random, as in [24]").
    let pairs = random_od_pairs_subset(&topo, nodes_n, pairs_n, seed);
    let te = TeConfig::default();

    eprintln!("scaling gravity demands to the max feasible volume...");
    let tms: Vec<_> = utils
        .iter()
        .map(|&u| gravity_at_utilization(&topo, &pairs, &oc, u))
        .collect();
    let peak = tms.last().unwrap().clone();

    eprintln!("planning the four REsPoNse variants...");
    let planner = Planner::new(&topo, &pm);
    let t_resp = planner.plan_pairs(&PlannerConfig::default(), &pairs);
    let t_lat = planner.plan_pairs(
        &PlannerConfig {
            beta: Some(0.25),
            ..Default::default()
        },
        &pairs,
    );
    let t_ospf = planner.plan_pairs(
        &PlannerConfig {
            strategy: OnDemandStrategy::Ospf,
            ..Default::default()
        },
        &pairs,
    );
    let t_heur = planner.plan_pairs(
        &PlannerConfig {
            strategy: OnDemandStrategy::Heuristic {
                k: 4,
                peak: peak.clone(),
            },
            ..Default::default()
        },
        &pairs,
    );

    let full = pm.full_power(&topo);
    let frac_of = |tables: &respons_core::PathTables, tm| {
        let (active, _, _, _) = place_matrix(&topo, tables, tm, &te);
        pm.network_power(&topo, &active) / full
    };

    let mut out = Out {
        utils: utils.to_vec(),
        response_lat: vec![],
        response: vec![],
        response_ospf: vec![],
        response_heuristic: vec![],
        optimal: vec![],
    };
    let mut rows = Vec::new();
    for (i, tm) in tms.iter().enumerate() {
        eprintln!("evaluating util-{}...", utils[i]);
        let lat = frac_of(&t_lat, tm);
        let resp = frac_of(&t_resp, tm);
        let ospf = frac_of(&t_ospf, tm);
        let heur = frac_of(&t_heur, tm);
        let opt = optimal_subset(&topo, &pm, tm, &oc)
            .map(|r| r.power_w / full)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            format!("util-{}", utils[i]),
            format!("{:.1}%", 100.0 * lat),
            format!("{:.1}%", 100.0 * resp),
            format!("{:.1}%", 100.0 * ospf),
            format!("{:.1}%", 100.0 * heur),
            format!("{:.1}%", 100.0 * opt),
        ]);
        out.response_lat.push(lat);
        out.response.push(resp);
        out.response_ospf.push(ospf);
        out.response_heuristic.push(heur);
        out.optimal.push(opt);
    }
    print_table(
        "Fig 6: power (% of original) vs utilization, Genuity topology",
        &[
            "",
            "REsPoNse-lat",
            "REsPoNse",
            "REsPoNse-ospf",
            "REsPoNse-heuristic",
            "Optimal",
        ],
        &rows,
    );
    println!("\npaper: ~30% savings at low util; progressive activation with load; optimal lowest");
    println!(
        "measured: util-10 savings {:.1}% (REsPoNse); optimal <= all schemes at every level: {}",
        100.0 * (1.0 - out.response[0]),
        (0..utils.len()).all(|i| {
            out.optimal[i]
                <= out.response[i]
                    .min(out.response_lat[i])
                    .min(out.response_ospf[i])
                    + 1e-9
        })
    );

    write_json("fig6_genuity_utilization", &out);
}
