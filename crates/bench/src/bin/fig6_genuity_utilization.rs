//! Figure 6 — power at util-10/50/100 on the Genuity topology.
//!
//! Paper: savings ~30% at low utilization; REsPoNse and REsPoNse-lat
//! progressively activate resources as utilization grows;
//! REsPoNse-heuristic saves more at high load (traffic-aware);
//! REsPoNse-ospf still exhibits energy proportionality; Optimal bounds
//! them all from below.
//!
//! Four planner-variant scenarios × three utilization levels, each a
//! single-interval `Program` replay (resolved once per variant, re-run
//! per level); the first variant also computes the optimal bound.
//!
//! Usage: `--pairs 160 --nodes 26 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{resolve, run_resolved, StrategySpec};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    utils: Vec<f64>,
    /// scheme -> power fraction per utilization level
    response_lat: Vec<f64>,
    response: Vec<f64>,
    response_ospf: Vec<f64>,
    response_heuristic: Vec<f64>,
    optimal: Vec<f64>,
}

fn main() {
    let pairs_n: usize = arg("pairs", 160);
    let nodes_n: usize = arg("nodes", 26);
    let seed: u64 = arg("seed", 1);
    let utils = [10.0, 50.0, 100.0];

    // (label, strategy, beta, carries-the-optimal-bound)
    let variants: [(&str, StrategySpec, Option<f64>, bool); 4] = [
        ("REsPoNse-lat", StrategySpec::StressFactor, Some(0.25), true),
        ("REsPoNse", StrategySpec::StressFactor, None, false),
        ("REsPoNse-ospf", StrategySpec::Ospf, None, false),
        (
            "REsPoNse-heuristic",
            StrategySpec::Heuristic {
                k: 4,
                peak_level: 1.0,
            },
            None,
            false,
        ),
    ];

    // power[variant][util], optimal[util]
    let mut power = vec![vec![0.0; utils.len()]; variants.len()];
    let mut optimal = vec![0.0; utils.len()];
    for (vi, (label, strategy, beta, with_optimal)) in variants.iter().enumerate() {
        eprintln!("planning {label}...");
        let base =
            ecp_bench::scenarios::fig6(pairs_n, nodes_n, seed, *strategy, *beta, 100.0, false);
        let resolved = resolve(&base).expect("fig6 variant resolves");
        for (ui, &u) in utils.iter().enumerate() {
            let s = ecp_bench::scenarios::fig6(
                pairs_n,
                nodes_n,
                seed,
                *strategy,
                *beta,
                u,
                *with_optimal,
            );
            let report = run_resolved(&s, &resolved).expect("fig6 level runs");
            power[vi][ui] = report.mean_power_frac;
            if *with_optimal {
                optimal[ui] = report
                    .replay
                    .as_ref()
                    .and_then(|r| r.comparisons.first())
                    .map(|c| c.series[0])
                    .expect("optimal bound computed");
            }
        }
    }

    let out = Out {
        utils: utils.to_vec(),
        response_lat: power[0].clone(),
        response: power[1].clone(),
        response_ospf: power[2].clone(),
        response_heuristic: power[3].clone(),
        optimal: optimal.clone(),
    };
    let rows: Vec<Vec<String>> = utils
        .iter()
        .enumerate()
        .map(|(ui, u)| {
            let mut row = vec![format!("util-{u}")];
            row.extend((0..variants.len()).map(|vi| format!("{:.1}%", 100.0 * power[vi][ui])));
            row.push(format!("{:.1}%", 100.0 * optimal[ui]));
            row
        })
        .collect();
    print_table(
        "Fig 6: power (% of original) vs utilization, Genuity topology",
        &[
            "",
            "REsPoNse-lat",
            "REsPoNse",
            "REsPoNse-ospf",
            "REsPoNse-heuristic",
            "Optimal",
        ],
        &rows,
    );
    println!("\npaper: ~30% savings at low util; progressive activation with load; optimal lowest");
    println!(
        "measured: util-10 savings {:.1}% (REsPoNse); optimal <= all schemes at every level: {}",
        100.0 * (1.0 - out.response[0]),
        (0..utils.len()).all(|i| {
            out.optimal[i]
                <= out.response[i]
                    .min(out.response_lat[i])
                    .min(out.response_ospf[i])
                    + 1e-9
        })
    );

    write_json("fig6_genuity_utilization", &out);
}
