//! SweepRunner demo: the `beta × num_paths × margin` planner grid from
//! the ROADMAP, executed in parallel on all cores.
//!
//! Expands a 2 × 2 × 2 grid (8 scenario instances — or more via
//! `--replicates`) over a GÉANT step-load scenario, runs every instance
//! on the rayon pool with deterministic seeds, and prints one
//! aggregated table. Verifies thread-count independence by re-running
//! the grid single-threaded and comparing reports byte for byte.
//!
//! Usage: `--replicates 1 --duration 60`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::{
    Axis, MatrixSpec, MetricsSpec, PairsSpec, Param, PowerSpec, ScaleSpec, ScenarioBuilder,
    SweepRunner,
};
use ecp_topo::gen::TopoSpec;
use ecp_traffic::{Program, Shape};

fn main() {
    let replicates: usize = arg("replicates", 1);
    let duration: f64 = arg("duration", 60.0);

    let base = ScenarioBuilder::new("planner-grid")
        .seed(7)
        .duration_s(duration)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Random { count: 60 })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 0.9 },
            Program::from_shape(
                duration,
                15.0,
                Shape::Steps {
                    levels: vec![0.4, 1.0],
                    step_s: 15.0,
                },
            ),
        )
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            per_path_rates: false,
            ..Default::default()
        })
        .build();

    let mut sweep = SweepRunner::new(
        base,
        vec![
            Axis::new(Param::Beta, [-1.0, 0.25]), // negative = unbounded
            Axis::new(Param::NumPaths, [3.0, 4.0]),
            Axis::new(Param::Margin, [0.9, 1.0]),
        ],
    );
    if replicates > 1 {
        sweep = sweep.replicates(replicates);
    }
    eprintln!("running {} scenario instances on all cores...", sweep.len());
    let t0 = std::time::Instant::now();
    let parallel = sweep.run().expect("sweep runs");
    let parallel_s = t0.elapsed().as_secs_f64();

    eprintln!("re-running single-threaded for the determinism check...");
    let t1 = std::time::Instant::now();
    let serial = sweep.clone().threads(1).run().expect("serial sweep runs");
    let serial_s = t1.elapsed().as_secs_f64();

    let same = serde_json::to_string(&parallel).unwrap() == serde_json::to_string(&serial).unwrap();

    let mut rows = Vec::new();
    for r in &parallel.rows {
        let params: Vec<String> = r.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        rows.push(vec![
            params.join(" "),
            format!("{:.1}%", 100.0 * r.report.mean_power_frac),
            format!("{:.3}", r.report.mean_delivered_fraction),
            format!("{:.1}", r.report.max_tracking_lag_s),
        ]);
    }
    print_table(
        "Planner grid sweep: beta x num_paths x margin (GEANT step load)",
        &["params", "mean power", "delivered frac", "lag (s)"],
        &rows,
    );
    println!(
        "\n{} instances | parallel {:.1}s vs serial {:.1}s ({}x speedup) | thread-count independent: {same}",
        parallel.rows.len(),
        parallel_s,
        serial_s,
        (serial_s / parallel_s.max(1e-9)).round()
    );
    assert!(same, "sweep results must not depend on thread count");

    write_json("scenario_sweep", &parallel);
}
