//! Extension — the paper's stated future work (§6): "quantify the level
//! at which topology changes would warrant recomputing the
//! energy-critical paths."
//!
//! We grow the offered traffic 5% per simulated day over a GÉANT-like
//! replay and report when the drift detector advises replanning — and
//! what replanning at that moment recovers.
//!
//! Usage: `--days 12 --growth 1.05 --pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_power::PowerModel;
use ecp_topo::gen::geant;
use ecp_traffic::{geant_like_trace, gravity_matrix, random_od_pairs_subset};
use respons_core::replay::max_supported_scale;
use respons_core::{
    steady_state_replay, DriftConfig, DriftDetector, Planner, PlannerConfig, ReplanAdvice, TeConfig,
};
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    growth_per_day: f64,
    trigger_day: Option<usize>,
    congested_before_replan: f64,
    congested_after_replan: f64,
    reasons: Vec<String>,
}

fn main() {
    let days: usize = arg("days", 12);
    let growth: f64 = arg("growth", 1.05);
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    let topo = geant();
    let pm = PowerModel::cisco12000();
    let pairs = random_od_pairs_subset(&topo, 17, pairs_n, seed);
    let te = TeConfig::default();

    eprintln!("planning against today's demand envelope...");
    let tables = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
    let base = gravity_matrix(&topo, &pairs, 1e9);
    let aon = max_supported_scale(&topo, &tables, &base, &te, 1);
    let day0_peak = 1e9 * aon * 1.0;

    // One growing trace: day d's volume is day0 * growth^d.
    let mut trace = geant_like_trace(&topo, &pairs, days, day0_peak, seed);
    let per_day = (86_400.0 / trace.interval_s) as usize;
    for (i, m) in trace.matrices.iter_mut().enumerate() {
        let day = i / per_day;
        *m = m.scaled(growth.powi(day as i32));
    }

    let rep = steady_state_replay(&topo, &pm, &tables, &trace, &te);

    // Drift detection with a 2-day window.
    let cfg = DriftConfig {
        window: 2 * per_day,
        ..Default::default()
    };
    let mut det = DriftDetector::new(cfg);
    let mut trigger: Option<usize> = None;
    let mut reasons = Vec::new();
    for (i, p) in rep.points.iter().enumerate() {
        det.observe(p);
        if trigger.is_none() {
            if let ReplanAdvice::Replan(rs) = det.demand_advice() {
                trigger = Some(i / per_day);
                reasons = rs.iter().map(|r| format!("{r:?}")).collect();
            }
        }
    }

    // What replanning at the trigger recovers: replan against the
    // triggered day's peak envelope and replay the remaining days.
    let (before, after) = match trigger {
        Some(day) => {
            let start = day * per_day;
            let tail = ecp_traffic::Trace {
                name: "tail".into(),
                interval_s: trace.interval_s,
                matrices: trace.matrices[start..].to_vec(),
            };
            let tail_peak = tail.peak_matrix();
            let replanned = Planner::new(&topo, &pm).plan_pairs(
                &PlannerConfig {
                    offpeak: Some(tail.offpeak_matrix()),
                    strategy: respons_core::OnDemandStrategy::PeakMatrix(tail_peak),
                    ..Default::default()
                },
                &pairs,
            );
            let rep_before = steady_state_replay(&topo, &pm, &tables, &tail, &te);
            let rep_after = steady_state_replay(&topo, &pm, &replanned, &tail, &te);
            (
                rep_before.congested_fraction(),
                rep_after.congested_fraction(),
            )
        }
        None => (rep.congested_fraction(), rep.congested_fraction()),
    };

    let rows: Vec<Vec<String>> = rep
        .points
        .chunks(per_day)
        .enumerate()
        .map(|(d, c)| {
            let cong =
                c.iter().filter(|p| p.placed_fraction < 1.0 - 1e-9).count() as f64 / c.len() as f64;
            let spill = c.iter().filter(|p| p.spilled_demands > 0).count() as f64 / c.len() as f64;
            vec![
                format!(
                    "day {}{}",
                    d + 1,
                    if Some(d) == trigger {
                        "  <- replan advised"
                    } else {
                        ""
                    }
                ),
                format!("{:.0}%", 100.0 * growth.powi(d as i32)),
                format!("{:.1}%", 100.0 * cong),
                format!("{:.0}%", 100.0 * spill),
            ]
        })
        .collect();
    print_table(
        "Extension: demand grows 5%/day over tables planned for day 0",
        &[
            "",
            "volume vs day 0",
            "congested intervals",
            "on-demand in use",
        ],
        &rows,
    );
    println!("\npaper (future work): quantify when changes warrant recomputing the paths");
    match trigger {
        Some(d) => println!(
            "measured: detector advises replanning on day {} ({:?}); replanning cuts tail congestion {:.1}% -> {:.1}%",
            d + 1,
            reasons,
            100.0 * before,
            100.0 * after
        ),
        None => println!("measured: no replan needed within {days} days"),
    }

    write_json(
        "extension_replan_trigger",
        &Out {
            growth_per_day: growth,
            trigger_day: trigger,
            congested_before_replan: before,
            congested_after_replan: after,
            reasons,
        },
    );
}
