//! Extension — the paper's stated future work (§6): "quantify the level
//! at which topology changes would warrant recomputing the
//! energy-critical paths."
//!
//! A `DriftReplan`-mode replay: the offered traffic grows 5% per
//! simulated day over tables planned for day 0, the drift detector
//! advises when to replan, and the engine quantifies what replanning at
//! that moment recovers. This binary only formats output.
//!
//! Usage: `--days 12 --growth 1.05 --pairs 120 --seed 1`

use ecp_bench::{arg, print_table, write_json};
use ecp_scenario::run_scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    growth_per_day: f64,
    trigger_day: Option<usize>,
    congested_before_replan: f64,
    congested_after_replan: f64,
    reasons: Vec<String>,
}

fn main() {
    let days: usize = arg("days", 12);
    let growth: f64 = arg("growth", 1.05);
    let pairs_n: usize = arg("pairs", 120);
    let seed: u64 = arg("seed", 1);

    eprintln!("planning against today's demand envelope and replaying...");
    let scenario = ecp_bench::scenarios::extension_replan_trigger(days, growth, pairs_n, seed);
    let report = run_scenario(&scenario).expect("extension_replan scenario runs");
    let detail = report.replay.expect("replay detail");
    let drift = detail.drift.expect("DriftReplan mode yields drift stats");
    let placed = detail.placed_series.expect("delivered series selected");
    let spilled = detail.spilled_series.expect("delivered series selected");

    let per_day = (86_400.0 / detail.interval_s) as usize;
    let trigger = drift.trigger_interval.map(|i| i / per_day);
    let (before, after) = (drift.congested_before, drift.congested_after);
    let reasons = drift.reasons;

    let rows: Vec<Vec<String>> = placed
        .chunks(per_day)
        .zip(spilled.chunks(per_day))
        .enumerate()
        .map(|(d, (pc, sc))| {
            let cong = pc.iter().filter(|&&p| p < 1.0 - 1e-9).count() as f64 / pc.len() as f64;
            let spill = sc.iter().filter(|&&s| s > 0).count() as f64 / sc.len() as f64;
            vec![
                format!(
                    "day {}{}",
                    d + 1,
                    if Some(d) == trigger {
                        "  <- replan advised"
                    } else {
                        ""
                    }
                ),
                format!("{:.0}%", 100.0 * growth.powi(d as i32)),
                format!("{:.1}%", 100.0 * cong),
                format!("{:.0}%", 100.0 * spill),
            ]
        })
        .collect();
    print_table(
        "Extension: demand grows 5%/day over tables planned for day 0",
        &[
            "",
            "volume vs day 0",
            "congested intervals",
            "on-demand in use",
        ],
        &rows,
    );
    println!("\npaper (future work): quantify when changes warrant recomputing the paths");
    match trigger {
        Some(d) => println!(
            "measured: detector advises replanning on day {} ({:?}); replanning cuts tail congestion {:.1}% -> {:.1}%",
            d + 1,
            reasons,
            100.0 * before,
            100.0 * after
        ),
        None => println!("measured: no replan needed within {days} days"),
    }

    write_json(
        "extension_replan_trigger",
        &Out {
            growth_per_day: growth,
            trigger_day: trigger,
            congested_before_replan: before,
            congested_after_replan: after,
            reasons,
        },
    );
}
