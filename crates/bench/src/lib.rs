//! # ecp-bench — the experiment harness
//!
//! One binary per figure of the paper (see DESIGN.md §4 for the index),
//! plus ablation binaries and Criterion micro-benchmarks. Every binary:
//!
//! * prints a human-readable table mirroring the paper's figure,
//! * writes machine-readable JSON under `results/`,
//! * accepts `--key value` overrides for the main knobs (`--days 3`
//!   etc.) so CI can run scaled-down versions,
//! * is deterministic (all randomness seeded).
//!
//! Run everything (release mode strongly recommended):
//!
//! ```text
//! cargo run --release -p ecp-bench --bin fig5_geant_replay
//! cargo run --release -p ecp-bench --bin run_all
//! ```

use ecp_routing::oracle::OracleConfig;
use ecp_routing::place_flows;
use ecp_topo::{NodeId, Topology};
use ecp_traffic::{gravity_matrix, TrafficMatrix};
use serde::Serialize;
use std::path::PathBuf;

/// Parse `--name value` from argv; fall back to `default`.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == format!("--{name}") {
            if let Ok(v) = w[1].parse() {
                return v;
            }
        }
    }
    default
}

/// Results directory (created on demand): `results/` next to the
/// workspace root, overridable with `ECP_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ECP_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Serialize a result to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let s = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, s).expect("write result");
    println!("[results] wrote {}", path.display());
}

/// Print an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// The paper's max-load scaling procedure (§5.1): "we first compute the
/// maximum traffic load as the traffic volume that the optimal routing
/// can accommodate if the gravity-determined proportions are kept. We do
/// this by incrementally increasing the traffic demand by 10% up to a
/// point where CPLEX cannot find a routing" — our oracle plays CPLEX's
/// role. Returns the total volume marking 100% load.
pub fn max_feasible_volume(
    topo: &Topology,
    od_pairs: &[(NodeId, NodeId)],
    oracle: &OracleConfig,
) -> f64 {
    let start = topo.total_capacity() * 0.01;
    let base = gravity_matrix(topo, od_pairs, start);
    // Find an infeasible upper bound by +10% steps.
    let feasible = |v: f64| -> bool {
        let tm = base.scaled(v / start);
        place_flows(topo, None, &tm, oracle).is_some()
    };
    let mut volume = start;
    if !feasible(volume) {
        // Even 1% of capacity is too much; shrink instead.
        while volume > 1.0 && !feasible(volume) {
            volume /= 2.0;
        }
        return volume;
    }
    let mut hi = volume;
    while feasible(hi) {
        hi *= 1.1;
    }
    let mut lo = hi / 1.1;
    // Refine a little for stable results.
    for _ in 0..10 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Gravity matrix at a percentage of the maximum feasible load.
pub fn gravity_at_utilization(
    topo: &Topology,
    od_pairs: &[(NodeId, NodeId)],
    oracle: &OracleConfig,
    util_percent: f64,
) -> TrafficMatrix {
    let max = max_feasible_volume(topo, od_pairs, oracle);
    gravity_matrix(topo, od_pairs, max * util_percent / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_topo::gen::geant;
    use ecp_traffic::random_od_pairs;

    #[test]
    fn max_feasible_volume_is_tight() {
        let t = geant();
        let pairs = random_od_pairs(&t, 60, 1);
        let oc = OracleConfig::default();
        let v = max_feasible_volume(&t, &pairs, &oc);
        assert!(v > 0.0);
        let at_100 = gravity_matrix(&t, &pairs, v);
        assert!(place_flows(&t, None, &at_100, &oc).is_some(), "100% is feasible");
        let beyond = gravity_matrix(&t, &pairs, v * 1.25);
        assert!(place_flows(&t, None, &beyond, &oc).is_none(), "125% is not");
    }

    #[test]
    fn gravity_at_utilization_scales() {
        let t = geant();
        let pairs = random_od_pairs(&t, 40, 2);
        let oc = OracleConfig::default();
        let m50 = gravity_at_utilization(&t, &pairs, &oc, 50.0);
        let m100 = gravity_at_utilization(&t, &pairs, &oc, 100.0);
        assert!((m100.total() / m50.total() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(arg("definitely-not-passed", 42usize), 42);
        assert_eq!(arg("also-not-passed", 1.5f64), 1.5);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.305), "30.5%");
    }
}
