//! # ecp-bench — the experiment harness
//!
//! One binary per figure of the paper (see DESIGN.md §4 for the index),
//! plus ablation binaries and Criterion micro-benchmarks. Every binary:
//!
//! * prints a human-readable table mirroring the paper's figure,
//! * writes machine-readable JSON under `results/`,
//! * accepts `--key value` overrides for the main knobs (`--days 3`
//!   etc.) so CI can run scaled-down versions,
//! * is deterministic (all randomness seeded).
//!
//! Run everything (release mode strongly recommended):
//!
//! ```text
//! cargo run --release -p ecp-bench --bin fig5_geant_replay
//! cargo run --release -p ecp-bench --bin run_all
//! ```

use serde::Serialize;
use std::path::PathBuf;

pub mod scenarios;

// Capacity probing moved into `ecp-routing` so the scenario engine can
// use it; re-exported here for the experiment binaries.
pub use ecp_routing::capacity::{gravity_at_utilization, max_feasible_volume};

/// Parse `--name value` from argv; fall back to `default`.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == format!("--{name}") {
            if let Ok(v) = w[1].parse() {
                return v;
            }
        }
    }
    default
}

/// Results directory (created on demand): `results/` next to the
/// workspace root, overridable with `ECP_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ECP_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Serialize a result to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let s = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, s).expect("write result");
    println!("[results] wrote {}", path.display());
}

/// Print an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp_routing::{place_flows, OracleConfig};
    use ecp_topo::gen::geant;
    use ecp_traffic::{gravity_matrix, random_od_pairs};

    #[test]
    fn max_feasible_volume_is_tight() {
        let t = geant();
        let pairs = random_od_pairs(&t, 60, 1);
        let oc = OracleConfig::default();
        let v = max_feasible_volume(&t, &pairs, &oc);
        assert!(v > 0.0);
        let at_100 = gravity_matrix(&t, &pairs, v);
        assert!(
            place_flows(&t, None, &at_100, &oc).is_some(),
            "100% is feasible"
        );
        let beyond = gravity_matrix(&t, &pairs, v * 1.25);
        assert!(place_flows(&t, None, &beyond, &oc).is_none(), "125% is not");
    }

    #[test]
    fn gravity_at_utilization_scales() {
        let t = geant();
        let pairs = random_od_pairs(&t, 40, 2);
        let oc = OracleConfig::default();
        let m50 = gravity_at_utilization(&t, &pairs, &oc, 50.0);
        let m100 = gravity_at_utilization(&t, &pairs, &oc, 100.0);
        assert!((m100.total() / m50.total() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(arg("definitely-not-passed", 42usize), 42);
        assert_eq!(arg("also-not-passed", 1.5f64), 1.5);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.305), "30.5%");
    }
}
