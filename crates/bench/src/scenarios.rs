//! The scenario registry: every experiment of the harness as a
//! declarative [`Scenario`] value.
//!
//! Each figure/ablation/extension binary is a thin wrapper that builds
//! its scenario(s) here, runs them through `ecp_scenario`, and formats
//! the report — no hand-wired topology/traffic/planner setup anywhere.
//! [`campaign_registry`] additionally exports every experiment family
//! as a CI-scaled scenario value keyed by a stable id, which campaign
//! specs (`ecp-campaign`) reference with `registry = "<id>"`; `run_all`
//! executes the checked-in full-registry campaign.

use ecp_scenario::{
    AppSpec, CompareSpec, ControlSpec, EngineSpec, EventSpec, LinkRef, MatrixSpec, MetricsSpec,
    NodeRef, PacketPlacement, PacketRateSpec, PacketSpec, PairsSpec, PeakSpec, PlannerSpec,
    PowerSpec, ReplayMode, ReplaySpec, ScaleSpec, Scenario, ScenarioBuilder, SimSpec, SleepSpec,
    StrategySpec, SubsetScheme, TablesSpec, TraceSpec,
};
use ecp_topo::gen::TopoSpec;
use ecp_topo::GBPS;
use ecp_traffic::{Program, Shape};

/// A constant level-1.0 program: `n` whole days at 15-minute intervals.
fn constant_days(days: usize) -> Program {
    Program::from_shape(
        days as f64 * 86_400.0,
        900.0,
        Shape::Constant { level: 1.0 },
    )
}

/// A `Tables`-mode replay spec with no extras.
fn replay(trace: TraceSpec) -> EngineSpec {
    EngineSpec::Replay(ReplaySpec {
        trace,
        mode: ReplayMode::Tables,
        window: None,
        growth_per_day: None,
        comparisons: Vec::new(),
    })
}

/// Series-only metrics (power + delivered, nothing heavier).
fn series_metrics() -> MetricsSpec {
    MetricsSpec {
        power_series: true,
        delivered_series: true,
        per_path_rates: false,
        ..Default::default()
    }
}

// ---- Fig. 1: motivation ---------------------------------------------------

/// Fig. 1a — DC-trace deviation CCDF (`TraceStats` over the DC-like
/// trace; no placement, the topology is incidental).
pub fn fig1a(days: usize, groups: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new("fig1a-traffic-deviation")
        .seed(seed)
        .duration_s(days as f64 * 86_400.0)
        .topology(TopoSpec::Geant)
        .pairs(PairsSpec::Random { count: 2 })
        .traffic(
            MatrixSpec::Uniform,
            ScaleSpec::PerFlowBps { bps: 1.0 },
            constant_days(days),
        )
        .engine(EngineSpec::Replay(ReplaySpec {
            trace: TraceSpec::DcLike {
                groups,
                subsample: 1,
            },
            mode: ReplayMode::TraceStats,
            window: None,
            growth_per_day: None,
            comparisons: Vec::new(),
        }))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            ..Default::default()
        })
        .build()
}

/// Fig. 1b / 2a — per-interval `optimal` recomputation over a
/// GÉANT-like replay at `volume_frac` of the maximum feasible volume.
pub fn optimal_recompute_geant(
    name: &str,
    days: usize,
    pairs: usize,
    volume_frac: f64,
    seed: u64,
) -> Scenario {
    ScenarioBuilder::new(name)
        .seed(seed)
        .duration_s(days as f64 * 86_400.0)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Random { count: pairs })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::TotalBps { bps: 1e9 },
            constant_days(days),
        )
        .engine(EngineSpec::Replay(ReplaySpec {
            trace: TraceSpec::GeantLike {
                peak: PeakSpec::MaxFeasibleFraction {
                    fraction: volume_frac,
                },
            },
            mode: ReplayMode::Recompute {
                scheme: SubsetScheme::Optimal,
            },
            window: None,
            growth_per_day: None,
            comparisons: Vec::new(),
        }))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            ..Default::default()
        })
        .build()
}

/// Fig. 2b (fat-tree side) — greedy-prune recomputation over the
/// DC-volume-driven fat-tree replay.
pub fn fig2b_fattree(fat_k: usize, dc_days: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new("fig2b-fattree")
        .seed(seed)
        .duration_s(dc_days as f64 * 86_400.0)
        .topology(TopoSpec::FatTree { k: fat_k })
        .power(PowerSpec::CommodityDc)
        .pairs(PairsSpec::FatTreeFar)
        // Per-flow peak of 0.9 Gbps at the volume-series maximum.
        .traffic(
            MatrixSpec::Uniform,
            ScaleSpec::PerFlowBps { bps: 0.9 * GBPS },
            constant_days(dc_days),
        )
        .engine(EngineSpec::Replay(ReplaySpec {
            // DC trace is 5-min; every 6th point ≈ half-hourly replay.
            trace: TraceSpec::DcLike {
                groups: 1,
                subsample: 6,
            },
            mode: ReplayMode::Recompute {
                scheme: SubsetScheme::GreedyPrunePowerDesc,
            },
            window: None,
            growth_per_day: None,
            comparisons: Vec::new(),
        }))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            ..Default::default()
        })
        .build()
}

// ---- Fig. 4: fat-tree sine ------------------------------------------------

/// Fig. 4 — k-ary fat-tree under a sinusoidal per-flow demand in
/// [0.02, 0.9] Gbps, replayed over demand-aware tables (5 paths, peak
/// matrix); the far run carries the ECMP/ElasticTree/optimal baselines.
pub fn fig4(steps: usize, k: usize, far: bool) -> Scenario {
    let comparisons = if far {
        vec![
            CompareSpec::Ecmp { fanout: 16 },
            CompareSpec::ElasticTree,
            CompareSpec::OptimalAtPeak { peak_level: 0.9e9 },
        ]
    } else {
        Vec::new()
    };
    ScenarioBuilder::new(if far { "fig4-far" } else { "fig4-near" })
        .seed(1)
        .duration_s(steps as f64)
        .topology(TopoSpec::FatTree { k })
        .power(PowerSpec::CommodityDc)
        .pairs(if far {
            PairsSpec::FatTreeFar
        } else {
            PairsSpec::FatTreeNear
        })
        .traffic(
            MatrixSpec::Uniform,
            ScaleSpec::PerFlowBps { bps: 1.0 },
            Program::from_shape(
                steps as f64,
                1.0,
                Shape::Sine {
                    period_s: steps as f64,
                    lo: 0.02e9,
                    hi: 0.9e9,
                },
            ),
        )
        .planner(PlannerSpec {
            num_paths: 5,
            strategy: StrategySpec::PeakOffered { peak_level: 0.9e9 },
            ..Default::default()
        })
        .engine(EngineSpec::Replay(ReplaySpec {
            trace: TraceSpec::Program,
            mode: ReplayMode::Tables,
            window: None,
            growth_per_day: None,
            comparisons,
        }))
        .metrics(series_metrics())
        .build()
}

// ---- Fig. 5: GÉANT replay -------------------------------------------------

/// Fig. 5 — REsPoNse over the 15-day GÉANT-like replay; diurnal peak
/// slightly above the always-on capacity, capped below the all-tables
/// capacity.
pub fn fig5(days: usize, pairs: usize, nodes: usize, peak_frac: f64, seed: u64) -> Scenario {
    ScenarioBuilder::new("fig5-geant-replay")
        .seed(seed)
        .duration_s(days as f64 * 86_400.0)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::RandomSubset {
            nodes,
            count: pairs,
        })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::TotalBps { bps: 1e9 },
            constant_days(days),
        )
        .engine(replay(TraceSpec::GeantLike {
            peak: PeakSpec::OverAlwaysOn {
                factor: peak_frac,
                cap_over_full: Some(0.95),
                use_sim_te: true,
            },
        }))
        .metrics(series_metrics())
        .build()
}

/// Fig. 5, alternative-hardware run: same pairs and trace (the peak is
/// pinned to the today-hardware scenario's resolved value) over tables
/// planned with the chassis/10 power model.
pub fn fig5_alt_hw(days: usize, pairs: usize, nodes: usize, peak_bps: f64, seed: u64) -> Scenario {
    let mut s = fig5(days, pairs, nodes, 1.0, seed);
    s.name = "fig5-geant-replay-alt-hw".into();
    s.power = PowerSpec::AlternativeHw;
    s.engine = replay(TraceSpec::GeantLike {
        peak: PeakSpec::TotalBps { bps: peak_bps },
    });
    s
}

// ---- Fig. 6: Genuity utilization ------------------------------------------

/// Fig. 6 — one REsPoNse variant on Genuity at `util_percent` of the
/// maximum feasible volume (a single-interval `Program` replay). The
/// first variant also computes the `optimal` bound per interval.
pub fn fig6(
    pairs: usize,
    nodes: usize,
    seed: u64,
    strategy: StrategySpec,
    beta: Option<f64>,
    util_percent: f64,
    with_optimal: bool,
) -> Scenario {
    ScenarioBuilder::new("fig6-genuity")
        .seed(seed)
        .duration_s(900.0)
        .topology(TopoSpec::Genuity)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::RandomSubset {
            nodes,
            count: pairs,
        })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 1.0 },
            Program::from_shape(
                900.0,
                900.0,
                Shape::Constant {
                    level: util_percent / 100.0,
                },
            ),
        )
        .planner(PlannerSpec {
            beta,
            strategy,
            ..Default::default()
        })
        .engine(EngineSpec::Replay(ReplaySpec {
            trace: TraceSpec::Program,
            mode: ReplayMode::Tables,
            window: None,
            growth_per_day: None,
            comparisons: if with_optimal {
                vec![CompareSpec::OptimalPerInterval]
            } else {
                Vec::new()
            },
        }))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            ..Default::default()
        })
        .build()
}

// ---- Fig. 9 / §5.4: application workloads ---------------------------------

/// The §5.4 testbed sim knobs (sub-second control loop on Abovenet).
fn abovenet_app_sim(control: f64, wake: f64, detect: f64, sleep: f64, sample: f64) -> SimSpec {
    SimSpec {
        control_interval_s: control,
        wake_time_s: wake,
        detect_delay_s: detect,
        sleep_after_s: sleep,
        sample_interval_s: sample,
        te_start_s: 0.0,
        ..Default::default()
    }
}

/// Fig. 9 — streaming from Abovenet node 0 to every other PoP; two join
/// waves; REsPoNse-lat (`beta = 0.25`) or the OSPF-InvCap baseline.
pub fn fig9(clients: usize, duration: f64, runs: usize, invcap: bool) -> Scenario {
    ScenarioBuilder::new(if invcap {
        "fig9-streaming-invcap"
    } else {
        "fig9-streaming-rep-lat"
    })
    // Per-run placement seeds are `seed + run`; the paper binary used 7.
    .seed(7)
    .duration_s(duration)
    .topology(TopoSpec::Abovenet)
    .power(PowerSpec::Cisco12000)
    .pairs(PairsSpec::Star {
        center: NodeRef::ByIndex { index: 0 },
    })
    .tables(if invcap {
        TablesSpec::OspfInvCap
    } else {
        TablesSpec::Planned
    })
    .planner(PlannerSpec {
        beta: Some(0.25),
        ..Default::default()
    })
    .sim(abovenet_app_sim(0.2, 0.1, 0.2, 1.0, 0.5))
    .engine(EngineSpec::App(AppSpec::streaming_default(
        clients,
        duration / 2.0,
        runs,
    )))
    .metrics(MetricsSpec {
        power_series: false,
        delivered_series: false,
        ..Default::default()
    })
    .build()
}

/// §5.4 in-text — SPECweb-like closed-loop web workload over Abovenet
/// stub nodes; plain REsPoNse (network-wide plan) or OSPF-InvCap.
pub fn text_web(requests: usize, seed: u64, invcap: bool) -> Scenario {
    ScenarioBuilder::new(if invcap {
        "text-web-invcap"
    } else {
        "text-web-response"
    })
    .seed(seed)
    .duration_s(3600.0)
    .topology(TopoSpec::Abovenet)
    .power(PowerSpec::Cisco12000)
    .pairs(PairsSpec::StarByDegree { clients: 4 })
    .tables(if invcap {
        TablesSpec::OspfInvCap
    } else {
        TablesSpec::PlannedAllPairs
    })
    .sim(abovenet_app_sim(0.1, 0.05, 0.1, 0.5, 0.2))
    .engine(EngineSpec::App(AppSpec::web_default(requests)))
    .metrics(MetricsSpec {
        power_series: false,
        delivered_series: false,
        ..Default::default()
    })
    .build()
}

// ---- §4 in-text analyses --------------------------------------------------

/// §4.1 — supported-volume probe of the installed tables (always-on
/// prefix vs all three) at fixed gravity proportions.
pub fn text_alwayson(pairs: usize, seed: u64, invcap: bool) -> Scenario {
    ScenarioBuilder::new(if invcap {
        "text-alwayson-invcap"
    } else {
        "text-alwayson-response"
    })
    .seed(seed)
    .duration_s(900.0)
    .topology(TopoSpec::Geant)
    .power(PowerSpec::Cisco12000)
    .pairs(PairsSpec::Random { count: pairs })
    .tables(if invcap {
        TablesSpec::OspfInvCap
    } else {
        TablesSpec::Planned
    })
    .traffic(
        MatrixSpec::Gravity,
        ScaleSpec::TotalBps { bps: 1e9 },
        Program::from_shape(900.0, 900.0, Shape::Constant { level: 1.0 }),
    )
    .sim(SimSpec {
        te_threshold: 1.0,
        ..Default::default()
    })
    .engine(replay(TraceSpec::Program))
    .metrics(MetricsSpec {
        power_series: false,
        delivered_series: false,
        table_capacity: true,
        ..Default::default()
    })
    .build()
}

/// §4.3 — single-link-failure coverage of planner output on one ISP map.
pub fn text_failover(topology: TopoSpec, pairs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new("text-failover-coverage")
        .seed(seed)
        .duration_s(900.0)
        .topology(topology)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Random { count: pairs })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::TotalBps { bps: 1e9 },
            Program::from_shape(900.0, 900.0, Shape::Constant { level: 1.0 }),
        )
        .engine(replay(TraceSpec::Program))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            failover_coverage: true,
            ..Default::default()
        })
        .build()
}

/// §4.5 — the Fig.-5-style replay whose volume and power series feed the
/// peak-duration and thermal-budget analysis.
pub fn text_peak(days: usize, pairs: usize, seed: u64) -> Scenario {
    let mut s = fig5(days, pairs, 17, 1.15, seed);
    s.name = "text-peak-provisioning".into();
    // The §4.5 analysis replays the uncapped 1.15× trace.
    s.engine = replay(TraceSpec::GeantLike {
        peak: PeakSpec::OverAlwaysOn {
            factor: 1.15,
            cap_over_full: None,
            use_sim_te: true,
        },
    });
    s
}

// ---- extensions -----------------------------------------------------------

/// §6 future work — demand grows `growth`/day over tables planned for
/// day 0; the drift detector advises when to replan (2-day window).
pub fn extension_replan_trigger(days: usize, growth: f64, pairs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new("extension-replan-trigger")
        .seed(seed)
        .duration_s(days as f64 * 86_400.0)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::RandomSubset {
            nodes: 17,
            count: pairs,
        })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::TotalBps { bps: 1e9 },
            constant_days(days),
        )
        .engine(EngineSpec::Replay(ReplaySpec {
            trace: TraceSpec::GeantLike {
                peak: PeakSpec::OverAlwaysOn {
                    factor: 1.0,
                    cap_over_full: None,
                    use_sim_te: true,
                },
            },
            mode: ReplayMode::DriftReplan {
                window_intervals: 2 * 96,
            },
            window: None,
            growth_per_day: Some(growth),
            comparisons: Vec::new(),
        }))
        .metrics(series_metrics())
        .build()
}

/// Extension — §5.4 latency at the packet level: consolidated
/// (REsPoNse always-on) vs spread (OSPF-InvCap) paths on Abovenet.
pub fn extension_packet_latency(util: f64, clients: usize, invcap: bool) -> Scenario {
    ScenarioBuilder::new(if invcap {
        "extension-packet-latency-invcap"
    } else {
        "extension-packet-latency-response"
    })
    .seed(1)
    .duration_s(10.0)
    .topology(TopoSpec::Abovenet)
    .power(PowerSpec::Cisco12000)
    .pairs(PairsSpec::StarByDegree { clients })
    .tables(if invcap {
        TablesSpec::OspfInvCap
    } else {
        TablesSpec::PlannedAllPairs
    })
    .engine(EngineSpec::Packet(PacketSpec {
        rate: PacketRateSpec::OriginUtilization { frac: util },
        stop_s: 2.0,
        phase_offset_s: 1e-4,
        placement: PacketPlacement::AlwaysOn,
        ..Default::default()
    }))
    .metrics(MetricsSpec {
        power_series: false,
        delivered_series: false,
        ..Default::default()
    })
    .build()
}

/// Extension — §2.1.1 opportunistic sleeping on the Fig.-3 testbed:
/// packets either spread over all installed paths or consolidated on
/// the always-on middle, with gap-sleep analysis.
pub fn extension_opportunistic_sleep(
    rate_bps: f64,
    min_gap_s: f64,
    wake_s: f64,
    spread: bool,
) -> Scenario {
    ScenarioBuilder::new(if spread {
        "extension-sleep-spread"
    } else {
        "extension-sleep-consolidated"
    })
    .seed(1)
    .duration_s(20.0)
    .topology(TopoSpec::Fig3Click)
    .power(PowerSpec::Cisco12000)
    .pairs(PairsSpec::Fig3)
    .tables(TablesSpec::Fig3Paper)
    .engine(EngineSpec::Packet(PacketSpec {
        rate: PacketRateSpec::PerFlowBps { bps: rate_bps },
        stop_s: 10.0,
        phase_offset_s: 1e-3,
        placement: if spread {
            PacketPlacement::SpreadAll
        } else {
            PacketPlacement::AlwaysOn
        },
        sleep: Some(SleepSpec { min_gap_s, wake_s }),
        ..Default::default()
    }))
    .metrics(MetricsSpec {
        power_series: false,
        delivered_series: false,
        ..Default::default()
    })
    .build()
}

// ---- ablations ------------------------------------------------------------

/// Shared base of the GEANT planner ablations: a single-interval
/// `Program` replay at 85 % of the maximum feasible volume (peak-hour
/// demand) with table analysis on.
pub fn ablation_base(name: &str, pairs: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new(name)
        .seed(seed)
        .duration_s(900.0)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Random { count: pairs })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 0.85 },
            Program::from_shape(900.0, 900.0, Shape::Constant { level: 1.0 }),
        )
        .sim(SimSpec {
            te_threshold: 1.0,
            ..Default::default()
        })
        .engine(replay(TraceSpec::Program))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            table_stats: true,
            ..Default::default()
        })
        .build()
}

/// Threshold ablation — the GÉANT-like replay 1.15× above the always-on
/// capacity, swept over the TE threshold.
pub fn ablation_threshold(pairs: usize, days: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new("ablation-threshold")
        .seed(seed)
        .duration_s(days as f64 * 86_400.0)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Random { count: pairs })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::TotalBps { bps: 1e9 },
            constant_days(days),
        )
        .engine(EngineSpec::replay_over_always_on(1.15))
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            ..Default::default()
        })
        .build()
}

// ---- Figs. 7/8: adaptation ------------------------------------------------

/// Fig. 7 — the Click-testbed adaptation experiment (§5.3).
pub fn fig7(duration: f64) -> Scenario {
    ScenarioBuilder::new("fig7-click-adaptation")
        .seed(1)
        .duration_s(duration)
        .topology(TopoSpec::Fig3Click)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Fig3)
        .tables(TablesSpec::Fig3Paper)
        // 5 flows x ~0.5 Mbps per source (paper: 10 pps each, ~5 Mbps
        // total across both sources).
        .traffic(
            MatrixSpec::Uniform,
            ScaleSpec::PerFlowBps { bps: 2.5e6 },
            Program::from_shape(duration, duration, Shape::Constant { level: 1.0 }),
        )
        // Max RTT: 6 hops of 16.67 ms ~ 100 ms -> control interval T.
        .sim(SimSpec {
            control_interval_s: 0.1,
            wake_time_s: 0.01,   // "10 ms to wake up a sleeping link"
            detect_delay_s: 0.1, // "100 ms for the failure to be detected and propagated"
            sleep_after_s: 0.2,
            sample_interval_s: 0.05,
            te_start_s: 5.0, // "REsPoNseTE starts running at t = 5 s"
            ..Default::default()
        })
        // Pre-TE state: traffic spread over both candidate paths.
        .initial_shares(vec![0.5, 0.5])
        // Fail the middle link at t = 5.7 s.
        .event(EventSpec::LinkFail {
            at: 5.7,
            link: LinkRef::ByName {
                from: "E".into(),
                to: "H".into(),
            },
        })
        .metrics(MetricsSpec {
            power_series: false,
            delivered_series: false,
            per_path_rates: true,
            ..Default::default()
        })
        .build()
}

/// The Fig.-8 ns-2 experiment simulator settings shared by both runs.
fn ns2_sim() -> SimSpec {
    SimSpec {
        control_interval_s: 0.5,
        wake_time_s: 5.0, // "we set the wake-up time to 5 s"
        detect_delay_s: 0.5,
        sleep_after_s: 2.0,
        sample_interval_s: 0.5,
        te_start_s: 0.0,
        ..Default::default()
    }
}

/// Fig. 8a — PoP-access ISP adaptation under util-50/100 alternation.
pub fn fig8a(steps: usize) -> Scenario {
    let t_end = steps as f64 * 30.0;
    ScenarioBuilder::new("fig8a-pop-access")
        .seed(1)
        .duration_s(t_end)
        .topology(TopoSpec::pop_access_default())
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::EdgeOffset {
            denominators: vec![2, 3],
        })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 0.9 },
            Program::from_shape(
                t_end,
                30.0,
                Shape::Steps {
                    levels: vec![0.5, 1.0],
                    step_s: 30.0,
                },
            ),
        )
        .sim(ns2_sim())
        .metrics(series_metrics())
        .build()
}

/// Fig. 8b — fat-tree adaptation under a per-flow sine.
pub fn fig8b(steps: usize) -> Scenario {
    let t_end = steps as f64 * 30.0;
    ScenarioBuilder::new("fig8b-fat-tree")
        .seed(1)
        .duration_s(t_end)
        .topology(TopoSpec::FatTree { k: 4 })
        .power(PowerSpec::CommodityDc)
        .pairs(PairsSpec::FatTreeFar)
        .traffic(
            MatrixSpec::Uniform,
            ScaleSpec::PerFlowBps { bps: 1.0 },
            Program::from_shape(
                t_end,
                30.0,
                Shape::Sine {
                    period_s: steps.max(2) as f64 * 30.0,
                    lo: 0.1e9,
                    hi: 0.9e9,
                },
            ),
        )
        .sim(ns2_sim())
        .metrics(series_metrics())
        .build()
}

// ---- new scenarios (PR 1) -------------------------------------------------

/// Cascading correlated link failures during a flash crowd: quiet at
/// 35 % load, ramp to 95 % of the feasible maximum at t = 30 s, with a
/// four-link correlated cascade landing mid-ramp (see the
/// `scenario_cascade_flashcrowd` binary for the narrative output).
pub fn cascade_flashcrowd(duration: f64, fails: usize, seed: u64) -> Scenario {
    ScenarioBuilder::new("cascade-during-flash-crowd")
        .seed(seed)
        .duration_s(duration)
        .topology(TopoSpec::Geant)
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::Random { count: 80 })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 1.0 },
            // Quiet at 35 %, ramp to 95 % at t = 30 s over 20 s, hold
            // 40 s, decay back over 20 s.
            Program::from_shape(
                duration,
                2.0,
                Shape::FlashCrowd {
                    base: 0.35,
                    peak: 0.95,
                    start_s: 30.0,
                    ramp_s: 20.0,
                    hold_s: 40.0,
                    decay_s: 20.0,
                },
            ),
        )
        .sim(SimSpec {
            control_interval_s: 0.5,
            wake_time_s: 1.0,
            detect_delay_s: 0.5,
            sleep_after_s: 2.0,
            sample_interval_s: 0.5,
            te_start_s: 0.0,
            ..Default::default()
        })
        // The cascade lands mid-ramp: correlated failures 2 s apart,
        // each repaired 25 s later.
        .event(EventSpec::FailureBurst {
            start: 40.0,
            count: fails,
            spacing_s: 2.0,
            repair_after_s: 25.0,
            seed_salt: 0xCA5CADE,
        })
        .metrics(series_metrics())
        .build()
}

/// Rolling backbone maintenance windows under diurnal traffic on the
/// PoP-access ISP: each backbone node drained for `window_mins`, one
/// after another overnight starting at 01:00, 15-minute settle gaps.
pub fn rolling_maintenance(windows: usize, window_mins: f64, seed: u64) -> Scenario {
    let day = 86_400.0;
    let window_s = window_mins * 60.0;
    let events: Vec<EventSpec> = (0..windows)
        .map(|i| EventSpec::MaintenanceWindow {
            start: 3_600.0 + i as f64 * (window_s + 900.0),
            duration_s: window_s,
            node: NodeRef::ByName {
                name: format!("bb{i}"),
            },
        })
        .collect();
    ScenarioBuilder::new("rolling-maintenance-diurnal")
        .seed(seed)
        .duration_s(day)
        .topology(TopoSpec::pop_access_default())
        .power(PowerSpec::Cisco12000)
        .pairs(PairsSpec::EdgeOffset {
            denominators: vec![2, 3],
        })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: 0.3 },
            Program::from_shape(
                day,
                900.0,
                Shape::Diurnal {
                    peak: 1.0,
                    night: 0.3,
                },
            ),
        )
        .sim(SimSpec {
            control_interval_s: 1.0,
            wake_time_s: 1.0,
            detect_delay_s: 1.0,
            sleep_after_s: 120.0,
            sample_interval_s: 300.0,
            te_start_s: 0.0,
            ..Default::default()
        })
        .events(events)
        .metrics(series_metrics())
        .build()
}

/// The A/B load-level base: a single-interval GEANT `Program` replay at
/// the maximum feasible volume, over planned REsPoNse tables or the
/// OSPF-InvCap baseline. Campaigns sweep `Param::LoadScale` over it to
/// compare the two schemes across load levels.
pub fn geant_load(invcap: bool) -> Scenario {
    ScenarioBuilder::new(if invcap {
        "geant-load-invcap"
    } else {
        "geant-load-response"
    })
    .seed(1)
    .duration_s(900.0)
    .topology(TopoSpec::Geant)
    .power(PowerSpec::Cisco12000)
    .pairs(PairsSpec::Random { count: 60 })
    .tables(if invcap {
        TablesSpec::OspfInvCap
    } else {
        TablesSpec::Planned
    })
    .traffic(
        MatrixSpec::Gravity,
        ScaleSpec::MaxFeasibleFraction { fraction: 1.0 },
        Program::from_shape(900.0, 900.0, Shape::Constant { level: 1.0 }),
    )
    .engine(replay(TraceSpec::Program))
    .metrics(MetricsSpec {
        power_series: false,
        delivered_series: false,
        ..Default::default()
    })
    .build()
}

// ---- TE control-loop stability (PR 4) -------------------------------------

/// The control policies the stability family compares, with their
/// default damping parameters, keyed by **registry id** — the single
/// source of truth shared by the `te_stability` binary and
/// [`campaign_registry`], so the two can never disagree on a policy's
/// parameters. Display labels come from [`ControlSpec::label`].
pub fn te_stability_policies() -> Vec<(&'static str, ControlSpec)> {
    vec![
        ("te-stability-undamped", ControlSpec::Undamped),
        ("te-stability-ewma", ControlSpec::Ewma { alpha: 0.3 }),
        (
            "te-stability-adaptive-ewma",
            ControlSpec::AdaptiveEwma {
                alpha_min: 0.2,
                alpha_max: 1.0,
            },
        ),
        (
            "te-stability-hysteresis",
            ControlSpec::Hysteresis {
                gap: 0.2,
                dead_band: 0.02,
            },
        ),
        (
            "te-stability-damped-step",
            ControlSpec::DampedStep {
                damp: 0.5,
                cooldown_rounds: 2,
            },
        ),
        ("te-stability-desync", ControlSpec::Desync { salt: 1 }),
    ]
}

/// Sustained overload with coupled flows on the PoP-access ISP — the
/// TE-dynamics failure mode from the ROADMAP: every metro's agents
/// observe the same freed headroom simultaneously, re-aggregate
/// together, overload the shared always-on uplinks again, and spill
/// again. Wake-up (5 s) and drain (2 s) delays turn that cycle into a
/// standing delivery-shortfall oscillation under the undamped policy;
/// the damped [`ControlSpec`] variants are measured against it via the
/// attached stability analysis.
pub fn te_stability(duration: f64, load: f64, control: ControlSpec) -> Scenario {
    te_stability_scaled(duration, load, control, 1)
}

/// [`te_stability`] at `scale`× the network/agent count: `scale`× the
/// metro and backbone tiers and `scale`× the OD pairs, same coupling
/// regime. `scale = 1` is exactly the registry family (golden-pinned);
/// larger scales are the perf harness's measurement points, where the
/// O(flows × paths × arcs) scans the incremental accounting removes
/// actually dominate the control loop.
pub fn te_stability_scaled(
    duration: f64,
    load: f64,
    control: ControlSpec,
    scale: usize,
) -> Scenario {
    let scale = scale.max(1);
    ScenarioBuilder::new(format!("te-stability-{}", control.label()))
        .seed(1)
        .duration_s(duration)
        .topology(TopoSpec::PopAccess {
            core: 4,
            backbone: 8 * scale,
            metro: 16 * scale,
        })
        .power(PowerSpec::Cisco12000)
        // Seed-sampled metro pairs (two per metro on average, like the
        // Fig.-8a pattern, but seed-sensitive so campaign replicates
        // actually vary) sharing the metro uplinks — the coupling that
        // makes simultaneous re-aggregation collective.
        .pairs(PairsSpec::Random { count: 44 * scale })
        .traffic(
            MatrixSpec::Gravity,
            ScaleSpec::MaxFeasibleFraction { fraction: load },
            Program::from_shape(duration, 30.0, Shape::Constant { level: 1.0 }),
        )
        .sim(ns2_sim())
        .control(control)
        .metrics(MetricsSpec {
            power_series: true,
            delivered_series: true,
            per_path_rates: true,
            stability: true,
            ..Default::default()
        })
        .build()
}

// ---- the campaign registry ------------------------------------------------

/// The campaign registry: every experiment family as a self-contained,
/// CI-scaled [`Scenario`] value keyed by a stable id. Campaign specs
/// reference these with `registry = "<id>"`; the checked-in
/// `examples/campaign_full_registry.toml` lists all of them, and
/// `run_all` executes that campaign.
///
/// Building the registry is cheap (scenarios are pure data; planning
/// happens at run time). Not listed: the Fig.-5 alternative-hardware
/// run (its trace peak is pinned to the value the today-hardware run
/// resolves, a cross-run data flow the `fig5_geant_replay` binary still
/// owns) and the planner ablations beyond the threshold one — those are
/// campaign *sweep entries* over `"ablation-planner-base"` (see
/// `examples/campaign_full_registry.toml` for the `NumPaths`, `Beta`,
/// `ExcludeFraction`, and grid axes).
pub fn campaign_registry() -> Vec<(&'static str, Scenario)> {
    vec![
        ("fig1a-traffic-deviation", fig1a(2, 20, 11)),
        (
            "fig1b-recomputation-rate",
            optimal_recompute_geant("fig1b-recomputation-rate", 2, 80, 0.5, 1),
        ),
        (
            "fig2a-config-dominance",
            optimal_recompute_geant("fig2a-config-dominance", 2, 80, 0.42, 1),
        ),
        ("fig2b-fattree-critical-paths", fig2b_fattree(6, 2, 1)),
        ("fig4-fattree-near", fig4(40, 4, false)),
        ("fig4-fattree-far", fig4(40, 4, true)),
        ("fig5-geant-replay", fig5(2, 80, 19, 1.15, 1)),
        (
            "fig6-genuity-stress",
            fig6(80, 26, 1, StrategySpec::StressFactor, None, 50.0, true),
        ),
        (
            "fig6-genuity-ospf",
            fig6(80, 26, 1, StrategySpec::Ospf, None, 50.0, false),
        ),
        ("fig7-click-adaptation", fig7(8.0)),
        ("fig8a-pop-access", fig8a(5)),
        ("fig8b-fat-tree", fig8b(5)),
        ("fig9-streaming-rep-lat", fig9(20, 60.0, 2, false)),
        ("fig9-streaming-invcap", fig9(20, 60.0, 2, true)),
        ("text-web-response", text_web(10, 1, false)),
        ("text-web-invcap", text_web(10, 1, true)),
        ("text-alwayson-response", text_alwayson(60, 1, false)),
        ("text-alwayson-invcap", text_alwayson(60, 1, true)),
        (
            "text-failover-coverage",
            text_failover(TopoSpec::Geant, 60, 1),
        ),
        ("text-peak-provisioning", text_peak(3, 60, 1)),
        (
            "extension-replan-trigger",
            extension_replan_trigger(6, 1.05, 60, 1),
        ),
        (
            "extension-packet-latency-response",
            extension_packet_latency(0.6, 4, false),
        ),
        (
            "extension-packet-latency-invcap",
            extension_packet_latency(0.6, 4, true),
        ),
        (
            "extension-sleep-consolidated",
            extension_opportunistic_sleep(2.5e6, 0.01, 0.01, false),
        ),
        (
            "extension-sleep-spread",
            extension_opportunistic_sleep(2.5e6, 0.01, 0.01, true),
        ),
        (
            "ablation-planner-base",
            ablation_base("ablation-planner-base", 60, 1),
        ),
        ("ablation-threshold", ablation_threshold(60, 1, 1)),
        ("geant-load-response", geant_load(false)),
        ("geant-load-invcap", geant_load(true)),
        (
            "scenario-cascade-flashcrowd",
            cascade_flashcrowd(120.0, 4, 11),
        ),
        (
            "scenario-rolling-maintenance",
            rolling_maintenance(2, 45.0, 3),
        ),
    ]
    .into_iter()
    // The TE-stability family derives from te_stability_policies(),
    // the single source of truth for the policy parameterizations.
    .chain(
        te_stability_policies()
            .into_iter()
            .map(|(id, control)| (id, te_stability(150.0, 0.7, control))),
    )
    .collect()
}

/// Look one registry id up (the [`ecp_campaign::Resolver`] `ecp-bench`
/// passes to campaign execution).
pub fn campaign_scenario(id: &str) -> Option<Scenario> {
    campaign_registry()
        .into_iter()
        .find(|(name, _)| *name == id)
        .map(|(_, s)| s)
}
