//! REsPoNseTE decision-rate microbenchmark: share updates per second.
//!
//! The paper's scalability argument for the online component is that
//! each edge agent only processes its own paths; this bench shows a
//! single decision is sub-microsecond, so even a PoP with thousands of
//! OD aggregates keeps per-interval work trivial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use respons_core::te::{decide_shares, PathView, TeConfig};

fn te_decisions(c: &mut Criterion) {
    let cfg = TeConfig::default();
    let mut g = c.benchmark_group("te_decide_shares");
    for paths in [2usize, 3, 5] {
        let views: Vec<PathView> = (0..paths)
            .map(|i| PathView {
                headroom: (i as f64 + 1.0) * 1e6,
                available: true,
            })
            .collect();
        let shares = vec![1.0 / paths as f64; paths];
        g.bench_with_input(BenchmarkId::from_parameter(paths), &paths, |b, _| {
            b.iter(|| {
                let s = decide_shares(5e6, &views, &shares, &cfg);
                assert_eq!(s.len(), views.len());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, te_decisions);
criterion_main!(benches);
