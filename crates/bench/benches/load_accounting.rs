//! The incremental-load-accounting hot kernels (ISSUE 5).
//!
//! Three layers of the online TE loop's per-round cost:
//!
//! * `arc_loads`: the from-scratch O(flows × paths × arcs) scan vs the
//!   O(arcs) snapshot of the incrementally-maintained vector — the
//!   observation every control round, sample, and delivery query needs.
//! * `te_kernel`: the decision halves (`waterfill_target` +
//!   `apply_step`) one agent runs per round.
//! * `end_to_end`: whole te-stability scenarios (scaled down) under
//!   both accounting modes — the number BENCH_simnet.json tracks at
//!   full duration.
//!
//! Run offline with `cargo bench -p ecp-bench --bench load_accounting`.
//! With `--features count-allocs` a fourth layer, `alloc_accounting`,
//! installs the counting global allocator (`ecp-telemetry`) and reports
//! heap allocations per control round alongside the wall-clock — the
//! measurement baseline for the ROADMAP "zero-alloc decision path"
//! item.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp_scenario::ControlSpec;
use ecp_simnet::{LoadAccounting, SimConfig, Simulation};
use respons_core::te::{apply_step, waterfill_target, PathView};

#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: ecp_telemetry::alloc_count::CountingAllocator =
    ecp_telemetry::alloc_count::CountingAllocator;

/// A running te-stability simulation (PoP-access ISP, 44 gravity
/// pairs), advanced past the initial transient so the share state is
/// the oscillating steady state the accounting has to keep up with.
fn warmed_sim(
    resolved: &ecp_scenario::ResolvedScenario,
) -> (Simulation<'_>, Vec<ecp_simnet::FlowId>) {
    let cfg = SimConfig {
        control_interval: 0.5,
        wake_time: 5.0,
        detect_delay: 0.5,
        sleep_after: 2.0,
        sample_interval: 0.5,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&resolved.built.topo, &resolved.power, &resolved.tables, cfg);
    // Pin the mode: the kernel comparison must measure the maintained
    // vector even if ECP_LOAD_ACCOUNTING=scratch is exported.
    sim.set_load_accounting(LoadAccounting::Incremental);
    let flows = resolved
        .pairs
        .iter()
        .map(|&(o, d)| sim.add_flow(&resolved.tables, o, d, 2e7))
        .collect();
    sim.run_until(5.0);
    (sim, flows)
}

fn arc_loads(c: &mut Criterion) {
    let scenario = ecp_bench::scenarios::te_stability(10.0, 0.7, ControlSpec::Undamped);
    let resolved = ecp_scenario::resolve(&scenario).expect("te-stability resolves");
    let (sim, _) = warmed_sim(&resolved);
    let mut g = c.benchmark_group("arc_loads");
    g.bench_with_input(BenchmarkId::from_parameter("scratch"), &(), |b, _| {
        b.iter(|| sim.arc_loads_scratch())
    });
    g.bench_with_input(BenchmarkId::from_parameter("incremental"), &(), |b, _| {
        // What a control round pays with incremental accounting: one
        // O(arcs) snapshot of the maintained vector.
        b.iter(|| sim.current_arc_loads().to_vec())
    });
    g.finish();
}

fn te_kernel(c: &mut Criterion) {
    let te = respons_core::TeConfig::default();
    let mut g = c.benchmark_group("waterfill_apply_step");
    for paths in [2usize, 3, 5] {
        let views: Vec<PathView> = (0..paths)
            .map(|i| PathView {
                headroom: (i as f64 - 0.5) * 4e6,
                available: true,
            })
            .collect();
        let current = vec![1.0 / paths as f64; paths];
        g.bench_with_input(BenchmarkId::from_parameter(paths), &paths, |b, _| {
            b.iter(|| {
                let target = waterfill_target(1.2e7, &views);
                apply_step(&views, &current, &target, te.step, te.min_share)
            })
        });
    }
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let restore = ecp_simnet::default_load_accounting();
    let mut g = c.benchmark_group("te_stability_10s_end_to_end");
    g.sample_size(10);
    for (label, control) in [
        ("undamped", ControlSpec::Undamped),
        ("desync", ControlSpec::Desync { salt: 1 }),
    ] {
        let scenario = ecp_bench::scenarios::te_stability(10.0, 0.7, control);
        let resolved = ecp_scenario::resolve(&scenario).expect("te-stability resolves");
        for mode in [LoadAccounting::Scratch, LoadAccounting::Incremental] {
            ecp_simnet::set_default_load_accounting(mode);
            let id = format!(
                "{label}/{}",
                if mode == LoadAccounting::Scratch {
                    "scratch"
                } else {
                    "incremental"
                }
            );
            g.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                b.iter(|| ecp_scenario::run_resolved(&scenario, &resolved).expect("runs"))
            });
        }
    }
    g.finish();
    ecp_simnet::set_default_load_accounting(restore);
}

/// A warmed te-stability simulation whose future event stream is pure
/// decision path: the recorder's sampling interval is pushed past the
/// measured window, so every event from `t = 5 s` on is a control
/// round (plus the phase-jittered per-agent decisions a desync policy
/// schedules within it). Used by `alloc_accounting` so the counted
/// allocations are attributable to observe→decide→apply alone.
#[cfg(feature = "count-allocs")]
fn warmed_decision_sim<'a>(
    resolved: &'a ecp_scenario::ResolvedScenario,
    control: &ControlSpec,
) -> Simulation<'a> {
    let cfg = SimConfig {
        control_interval: 0.5,
        wake_time: 5.0,
        detect_delay: 0.5,
        sleep_after: 2.0,
        sample_interval: 1e9,
        ..SimConfig::default()
    };
    let mut sim = Simulation::with_policy(
        &resolved.built.topo,
        &resolved.power,
        &resolved.tables,
        cfg,
        control.build(),
    );
    sim.set_load_accounting(LoadAccounting::Incremental);
    for &(o, d) in &resolved.pairs {
        sim.add_flow(&resolved.tables, o, d, 2e7);
    }
    sim.run_until(5.0);
    sim
}

/// Allocations per control round in the warmed steady state (feature
/// `count-allocs`; a no-op without it), one arm per te-stability
/// policy so a regression is attributable. Prints the decision-path
/// allocs/round and bytes/round averages — pinned at 0.0 by CI's
/// bench-smoke job — and benches the same region so wall-clock under
/// the counting allocator stays visible next to the untouched layers
/// above.
fn alloc_accounting(c: &mut Criterion) {
    #[cfg(not(feature = "count-allocs"))]
    let _ = c;
    #[cfg(feature = "count-allocs")]
    {
        use ecp_telemetry::alloc_count;
        // 40 control rounds at the 0.5 s interval, single-threaded, so
        // the process-global deltas are this region's allocations only.
        let rounds = 40u64;
        let mut g = c.benchmark_group("alloc_accounting");
        g.sample_size(10);
        for (id, control) in ecp_bench::scenarios::te_stability_policies() {
            let scenario = ecp_bench::scenarios::te_stability(40.0, 0.7, control);
            let resolved = ecp_scenario::resolve(&scenario).expect("te-stability resolves");
            let mut sim = warmed_decision_sim(&resolved, &control);
            let (a0, b0) = (alloc_count::allocations(), alloc_count::bytes_allocated());
            sim.run_until(5.0 + rounds as f64 * 0.5);
            let da = alloc_count::allocations() - a0;
            let db = alloc_count::bytes_allocated() - b0;
            println!(
                "alloc_accounting[{id}]: decision path = {:.1} allocs/round, \
                 {:.0} bytes/round (over {rounds} rounds)",
                da as f64 / rounds as f64,
                db as f64 / rounds as f64
            );
            g.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                b.iter(|| {
                    let mut sim = warmed_decision_sim(&resolved, &control);
                    sim.run_until(5.0 + rounds as f64 * 0.5);
                    sim.now()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, arc_loads, te_kernel, end_to_end, alloc_accounting);
criterion_main!(benches);
