//! Simulator throughput: simulated seconds per wall second on the
//! Fig.-3 Click topology with active REsPoNseTE control.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp_power::PowerModel;
use ecp_simnet::{SimConfig, Simulation};
use ecp_topo::gen::fig3_click;
use ecp_topo::Path;
use respons_core::tables::OdPaths;
use respons_core::PathTables;

fn sim_setup() -> (ecp_topo::Topology, PathTables, ecp_topo::gen::Fig3Nodes) {
    let (t, n) = fig3_click();
    let mut pt = PathTables::new();
    pt.insert(
        n.a,
        n.k,
        OdPaths {
            always_on: Path::new(vec![n.a, n.e, n.h, n.k]),
            on_demand: vec![Path::new(vec![n.a, n.d, n.g, n.k])],
            failover: Path::new(vec![n.a, n.d, n.g, n.k]),
        },
    );
    pt.insert(
        n.c,
        n.k,
        OdPaths {
            always_on: Path::new(vec![n.c, n.e, n.h, n.k]),
            on_demand: vec![Path::new(vec![n.c, n.f, n.j, n.k])],
            failover: Path::new(vec![n.c, n.f, n.j, n.k]),
        },
    );
    (t, pt, n)
}

fn simnet_run(c: &mut Criterion) {
    let pm = PowerModel::cisco12000();
    let (t, pt, n) = sim_setup();
    let mut g = c.benchmark_group("simnet_simulated_seconds");
    for secs in [10u64, 60, 300] {
        g.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, &secs| {
            b.iter(|| {
                let mut sim = Simulation::new(&t, &pm, &pt, SimConfig::default());
                let fa = sim.add_flow(&pt, n.a, n.k, 2.5e6);
                let _fc = sim.add_flow(&pt, n.c, n.k, 2.5e6);
                sim.schedule_demand(secs as f64 / 2.0, fa, 7e6);
                sim.run_until(secs as f64);
                assert!(!sim.recorder().is_empty());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, simnet_run);
criterion_main!(benches);
