//! Planner runtime vs topology size — the scalability side of the
//! paper's optimality–scalability trade-off.
//!
//! The paper's point: exact recomputation takes minutes-to-hours per
//! traffic change, while REsPoNse plans *once*. These benches quantify
//! our planner's one-time cost on growing Waxman WANs and compare the
//! per-change cost of the recompute-every-interval baseline
//! (`optimal_subset`) against the zero-cost REsPoNse steady state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp_power::PowerModel;
use ecp_routing::{optimal_subset, OracleConfig};
use ecp_topo::gen::random_waxman_default;
use ecp_traffic::{gravity_matrix, random_od_pairs};
use respons_core::{Planner, PlannerConfig};

fn planner_scaling(c: &mut Criterion) {
    let pm = PowerModel::cisco12000();
    let mut g = c.benchmark_group("planner_plan_once");
    g.sample_size(10);
    for n in [10usize, 20, 40] {
        let topo = random_waxman_default(n, 7);
        let pairs = random_od_pairs(&topo, 60.min(n * (n - 1)), 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let t = Planner::new(&topo, &pm).plan_pairs(&PlannerConfig::default(), &pairs);
                assert!(!t.is_empty());
            })
        });
    }
    g.finish();
}

fn recompute_baseline(c: &mut Criterion) {
    let pm = PowerModel::cisco12000();
    let oc = OracleConfig::default();
    let mut g = c.benchmark_group("optimal_recompute_per_change");
    g.sample_size(10);
    for n in [10usize, 20, 40] {
        let topo = random_waxman_default(n, 7);
        let pairs = random_od_pairs(&topo, 60.min(n * (n - 1)), 3);
        let tm = gravity_matrix(&topo, &pairs, topo.total_capacity() * 0.02);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = optimal_subset(&topo, &pm, &tm, &oc);
                assert!(r.is_some());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, planner_scaling, recompute_baseline);
criterion_main!(benches);
