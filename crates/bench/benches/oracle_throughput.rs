//! Feasibility-oracle throughput: demands placed per second on GÉANT.
//!
//! The oracle is the inner loop of every subset optimizer; its speed
//! bounds how fast the recompute-per-change baselines can possibly run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp_routing::{place_flows, OracleConfig};
use ecp_topo::gen::geant;
use ecp_traffic::{gravity_matrix, random_od_pairs};

fn oracle_throughput(c: &mut Criterion) {
    let topo = geant();
    let oc = OracleConfig::default();
    let mut g = c.benchmark_group("oracle_place_flows_geant");
    for demands in [50usize, 150, 450] {
        let pairs = random_od_pairs(&topo, demands, 5);
        let tm = gravity_matrix(&topo, &pairs, topo.total_capacity() * 0.02);
        g.bench_with_input(BenchmarkId::from_parameter(demands), &demands, |b, _| {
            b.iter(|| {
                let r = place_flows(&topo, None, &tm, &oc);
                assert!(r.is_some());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, oracle_throughput);
criterion_main!(benches);
