//! Offline path-construction kernels: Dijkstra single-source shortest
//! paths and Yen's k-shortest enumeration over the ISP maps — the cost
//! the planner pays per OD pair, and what the `ecp-scenario`
//! resolve-memoization (ISSUE 5) avoids re-running per sweep grid
//! point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp_routing::ospf::invcap_weight;
use ecp_topo::algo::{k_shortest_paths, shortest_path};
use ecp_topo::gen::{geant, pop_access, PopAccessConfig};
use ecp_topo::{NodeId, Topology};

fn isp_topos() -> Vec<(&'static str, Topology)> {
    vec![
        ("geant", geant()),
        ("pop-access", pop_access(&PopAccessConfig::default())),
    ]
}

/// A deterministic spread of OD pairs over the topology.
fn sample_pairs(topo: &Topology, n: usize) -> Vec<(NodeId, NodeId)> {
    let count = topo.node_count() as u32;
    (0..n as u32)
        .map(|i| {
            let o = (i * 7 + 1) % count;
            let d = (i * 13 + count / 2) % count;
            (NodeId(o), NodeId(if d == o { (d + 1) % count } else { d }))
        })
        .filter(|(o, d)| o != d)
        .collect()
}

fn dijkstra(c: &mut Criterion) {
    let mut g = c.benchmark_group("dijkstra_shortest_path");
    for (name, topo) in isp_topos() {
        let w = invcap_weight(&topo);
        let pairs = sample_pairs(&topo, 10);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter_map(|&(o, d)| shortest_path(&topo, o, d, &w, None))
                    .count()
            })
        });
    }
    g.finish();
}

fn yen(c: &mut Criterion) {
    let mut g = c.benchmark_group("yen_k_shortest_k3");
    g.sample_size(10);
    for (name, topo) in isp_topos() {
        let w = invcap_weight(&topo);
        let pairs = sample_pairs(&topo, 5);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|&(o, d)| k_shortest_paths(&topo, o, d, 3, &w, None).len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, dijkstra, yen);
criterion_main!(benches);
