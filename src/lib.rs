//! # REsPoNse — identifying and using energy-critical paths
//!
//! This is the facade crate of the reproduction of *"Identifying and
//! Using Energy-Critical Paths"* (Vasić et al., ACM CoNEXT 2011). It
//! re-exports every subsystem so examples and downstream users can depend
//! on a single crate:
//!
//! * [`topo`] — topologies, generators, graph algorithms.
//! * [`power`] — router/link power models and network power evaluation.
//! * [`traffic`] — traffic matrices, gravity/sine models, trace
//!   generators and replay.
//! * [`lp`] — simplex LP / branch-and-bound MIP solver (CPLEX
//!   substitute).
//! * [`routing`] — routing schemes, the feasibility oracle, baselines
//!   (OSPF-InvCap, ECMP, greedy/GreenTE heuristics, optimal subset).
//! * [`core`] — the REsPoNse framework itself: always-on / on-demand /
//!   failover planning, energy-critical path analytics, and the
//!   REsPoNseTE online traffic-engineering logic.
//! * [`control`] — pluggable online TE control-loop policies (undamped
//!   baseline, EWMA smoothing, hysteresis, damped step,
//!   desynchronization) and the control-stability analyzer.
//! * [`simnet`] — the discrete-event network simulator used for all
//!   runtime experiments, with scriptable event injection, a pausable
//!   stepping API, and policy-driven TE agents.
//! * [`scenario`] — declarative experiments: serializable `Scenario`
//!   values (topology spec + traffic program + event script + metrics
//!   selection, from TOML or a builder) and a rayon-parallel
//!   `SweepRunner` for parameter grids.
//! * [`campaign`] — whole-evaluation orchestration: multi-scenario
//!   campaign specs, deterministic sharded execution (in-process or
//!   across worker subprocesses), a content-addressed cached result
//!   store, and Markdown/CSV/JSON comparison reports.
//! * [`apps`] — application-level workloads (streaming, web) running on
//!   the simulator.
//!
//! ## Quickstart
//!
//! ```
//! use response::prelude::*;
//!
//! // 1. A topology and a power model.
//! let topo = response::topo::gen::geant();
//! let power = PowerModel::cisco12000();
//!
//! // 2. Plan REsPoNse paths once, off-line.
//! let plan = Planner::new(&topo, &power).plan(&PlannerConfig::default());
//!
//! // 3. Evaluate the power draw of the always-on subset.
//! let full = power.network_power(&topo, &ActiveSet::all_on(&topo));
//! let idle = power.network_power(&topo, &plan.always_on_active(&topo));
//! assert!(idle < full);
//! ```

pub use ecp_apps as apps;
pub use ecp_campaign as campaign;
pub use ecp_control as control;
pub use ecp_lp as lp;
pub use ecp_power as power;
pub use ecp_routing as routing;
pub use ecp_scenario as scenario;
pub use ecp_simnet as simnet;
pub use ecp_topo as topo;
pub use ecp_traffic as traffic;
pub use respons_core as core;

/// Most-used items in one import.
pub mod prelude {
    pub use ecp_power::PowerModel;
    pub use ecp_topo::{ActiveSet, ArcId, NodeId, Path, Topology, TopologyBuilder};
    pub use ecp_traffic::TrafficMatrix;
    pub use respons_core::{PathTables, Planner, PlannerConfig};
}
